"""Unit tests for the FIFO leftover-service-curve family kernel."""

import math

import numpy as np
import pytest

from repro.core.fifo_family import (
    affine_envelope,
    family_delay_for_thetas,
    family_pair_bound,
)
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket


def gated_leftover(capacity, sigma, rho, theta):
    """Reference: beta_theta(t) sampled pointwise (for brute force)."""
    def beta(t):
        if t <= theta:
            return 0.0
        return max(0.0, capacity * t - sigma - rho * (t - theta))
    return beta


def brute_force_delay(f12, b1, b2, tmax=200.0, n=8001):
    """hdev(F12, beta1 ⊗ beta2) by dense sampling."""
    ts = np.linspace(0.0, tmax, n)
    # convolution samples
    conv = np.full(n, np.inf)
    beta1 = np.array([b1(t) for t in ts])
    beta2 = np.array([b2(t) for t in ts])
    for i in range(n):
        conv[i:] = np.minimum(conv[i:], beta1[i] + beta2[: n - i])
    # running max (delay uses first-crossing semantics)
    conv = np.maximum.accumulate(conv)
    worst = 0.0
    alph = np.array([f12(t) for t in ts])
    for i in range(0, n, 40):
        target = alph[i]
        j = np.searchsorted(conv, target - 1e-12)
        if j >= n:
            return math.inf
        worst = max(worst, ts[j] - ts[i])
    return worst


class TestAffineEnvelope:
    def test_affine_is_itself(self):
        s, r = affine_envelope(P.affine(2.0, 0.3))
        assert s == pytest.approx(2.0) and r == pytest.approx(0.3)

    def test_peak_limited_bucket(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        s, r = affine_envelope(tb.constraint_curve())
        assert s == pytest.approx(1.0) and r == pytest.approx(0.2)

    def test_zero_curve(self):
        s, r = affine_envelope(P.zero())
        assert s == 0.0 and r == 0.0

    def test_envelope_dominates(self):
        tb = TokenBucket(1.5, 0.4, peak=2.0)
        c = tb.constraint_curve()
        s, r = affine_envelope(c)
        for t in [0.0, 1.0, 5.0, 50.0]:
            assert s + r * t >= c(t) - 1e-9


class TestDelayForThetas:
    def test_matches_brute_force(self):
        f12 = P.affine(2.0, 0.2)
        cases = [
            (1.0, 0.25, 1.5, 0.3, 0.5, 0.7),
            (1.0, 0.25, 1.5, 0.3, 0.0, 0.0),
            (0.5, 0.1, 0.5, 0.1, 3.0, 2.0),
        ]
        for s1, r1, s2, r2, th1, th2 in cases:
            exact = family_delay_for_thetas(
                f12, s1, r1, s2, r2, 1.0, 1.0, th1, th2)
            brute = brute_force_delay(
                f12,
                gated_leftover(1.0, s1, r1, th1),
                gated_leftover(1.0, s2, r2, th2))
            assert exact == pytest.approx(brute, abs=0.08), \
                (s1, r1, s2, r2, th1, th2)

    def test_unstable_is_inf(self):
        f12 = P.affine(1.0, 0.5)
        # leftover rate 1 - 0.6 = 0.4 < rho12
        assert family_delay_for_thetas(
            f12, 1.0, 0.6, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0) == math.inf

    def test_zero_cross_zero_theta_is_aggregate_delay(self):
        f12 = P.affine(2.0, 0.2)
        d = family_delay_for_thetas(f12, 0.0, 0.0, 0.0, 0.0,
                                    1.0, 1.0, 0.0, 0.0)
        # beta_net = line(1): delay = burst
        assert d == pytest.approx(2.0)


class TestPairBound:
    def test_idle_second_server_optimum(self):
        # with sigma12=sigma_x=1, rho12=rho_x=0.2 and an idle second
        # unit server, the family optimum is at theta1 solving
        # theta1 + sigma12 = (sigma_x - rho_x theta1 + sigma12)/R1,
        # i.e. theta1 = 1.2 and d = 2.2 (hand-derived; the exact joint
        # worst case is 2.0, which the Theorem-1 kernel attains — see
        # test_subsystem.py)
        f12 = P.affine(1.0, 0.2)
        f1 = P.affine(1.0, 0.2)
        res = family_pair_bound(f12, f1, P.zero(), 1.0, 1.0)
        assert res.delay_through == pytest.approx(2.2, abs=1e-6)
        assert res.theta1 == pytest.approx(1.2, abs=1e-3)

    def test_pays_through_burst_once(self):
        # two identical servers with light cross traffic: the family
        # bound must be well below twice the single-node bound
        f12 = P.affine(4.0, 0.1)
        f1 = P.affine(0.5, 0.1)
        f2 = P.affine(0.5, 0.1)
        res = family_pair_bound(f12, f1, f2, 1.0, 1.0)
        single = (f12 + f1).horizontal_deviation(P.line(1.0))
        assert res.delay_through < 2 * single * 0.8

    def test_thetas_nonnegative(self):
        f12 = P.affine(1.0, 0.2)
        res = family_pair_bound(f12, P.affine(1.0, 0.2),
                                P.affine(1.0, 0.2), 1.0, 1.0)
        assert res.theta1 >= 0 and res.theta2 >= 0

    def test_overloaded_cross_is_inf(self):
        res = family_pair_bound(P.affine(1.0, 0.1), P.affine(1.0, 1.2),
                                P.zero(), 1.0, 1.0)
        assert res.delay_through == math.inf

    def test_refine_improves_or_matches_coarse(self):
        f12 = P.affine(2.0, 0.15)
        f1 = P.affine(1.0, 0.3)
        f2 = P.affine(1.0, 0.3)
        coarse = family_pair_bound(f12, f1, f2, 1.0, 1.0, coarse=7,
                                   refine=False)
        refined = family_pair_bound(f12, f1, f2, 1.0, 1.0, coarse=7,
                                    refine=True)
        assert refined.delay_through <= coarse.delay_through + 1e-12
