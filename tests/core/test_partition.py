"""Unit tests for network partitioning (Algorithm Integrated step 1-2)."""

import pytest

from repro.core.partition import (
    GreedyPairing,
    PairAlongPath,
    Partition,
    SingletonPartition,
)
from repro.curves.token_bucket import TokenBucket
from repro.errors import TopologyError
from repro.network.flow import Flow
from repro.network.tandem import build_tandem
from repro.network.topology import Network, ServerSpec


TB = TokenBucket(1.0, 0.1, peak=1.0)


class TestPartitionValidation:
    def test_valid_pairing(self, tandem4):
        p = Partition(tandem4, [(1, 2), (3, 4)])
        assert p.n_pairs == 2

    def test_all_servers_must_be_covered(self, tandem4):
        with pytest.raises(TopologyError):
            Partition(tandem4, [(1, 2)])

    def test_no_duplicates(self, tandem4):
        with pytest.raises(TopologyError):
            Partition(tandem4, [(1, 2), (2, 3), (4,)])

    def test_pair_needs_edge(self, tandem4):
        with pytest.raises(TopologyError):
            Partition(tandem4, [(1, 3), (2,), (4,)])

    def test_block_size_limited(self, tandem4):
        with pytest.raises(TopologyError):
            Partition(tandem4, [(1, 2, 3), (4,)])

    def test_unknown_server(self, tandem4):
        with pytest.raises(TopologyError):
            Partition(tandem4, [(1, 2), (3, 4), (99,)])

    def test_topological_block_order(self, tandem4):
        p = Partition(tandem4, [(3, 4), (1, 2)])
        assert p.blocks.index((1, 2)) < p.blocks.index((3, 4))

    def test_block_of(self, tandem4):
        p = Partition(tandem4, [(1, 2), (3, 4)])
        assert p.block_of(3) == (3, 4)
        with pytest.raises(TopologyError):
            p.block_of(99)

    def test_contraction_cycle_rejected(self):
        # a -> b and a separate flow c -> d, plus flows a->c and d->b:
        # pairing (a,b) with (c,d)? edges: a->b, c->d, a->c, d->b.
        # contracting (a,b) and (c,d): AB -> CD (a->c), CD -> AB (d->b):
        # cycle.
        servers = [ServerSpec(s) for s in "abcd"]
        flows = [
            Flow("f1", TB, ["a", "b"]),
            Flow("f2", TB, ["c", "d"]),
            Flow("f3", TB, ["a", "c"]),
            Flow("f4", TB, ["d", "b"]),
        ]
        net = Network(servers, flows)
        with pytest.raises(TopologyError):
            Partition(net, [("a", "b"), ("c", "d")])


class TestStrategies:
    def test_singletons(self, tandem4):
        p = SingletonPartition().partition(tandem4)
        assert p.n_pairs == 0 and len(p) == 4

    def test_pair_along_path_even(self, tandem4):
        p = PairAlongPath().partition(tandem4)
        assert set(p.blocks) == {(1, 2), (3, 4)}

    def test_pair_along_path_odd(self):
        net = build_tandem(5, 0.5)
        p = PairAlongPath().partition(net)
        assert (5,) in p.blocks and p.n_pairs == 2

    def test_pair_along_named_flow(self, tandem4):
        p = PairAlongPath("long_2").partition(tandem4)
        assert (2, 3) in p.blocks

    def test_pair_along_path_defaults_to_longest(self, tandem4):
        # longest flow is conn0
        assert PairAlongPath().partition(tandem4).blocks == \
            PairAlongPath("conn0").partition(tandem4).blocks

    def test_off_path_servers_become_singletons(self):
        servers = [ServerSpec(s) for s in ("a", "b", "x")]
        flows = [Flow("main", TB, ["a", "b"]), Flow("other", TB, ["x"])]
        net = Network(servers, flows)
        p = PairAlongPath("main").partition(net)
        assert ("x",) in p.blocks

    def test_greedy_pairs_heaviest_edge(self, tandem4):
        p = GreedyPairing().partition(tandem4)
        assert p.n_pairs >= 1
        # every pair must be a server-graph edge
        g = tandem4.server_graph
        for blk in p.blocks:
            if len(blk) == 2:
                assert g.has_edge(*blk)

    def test_greedy_on_tandem_covers_everything(self):
        net = build_tandem(6, 0.5)
        p = GreedyPairing().partition(net)
        covered = sorted(s for blk in p.blocks for s in blk)
        assert covered == list(range(1, 7))
