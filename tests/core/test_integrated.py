"""Unit tests for Algorithm Integrated (the end-to-end driver)."""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.core.partition import (
    GreedyPairing,
    PairAlongPath,
    SingletonPartition,
)
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Discipline, Network, ServerSpec


TB = TokenBucket(1.0, 0.1, peak=1.0)


class TestOnTandem:
    def test_beats_decomposed_everywhere(self):
        for n in (2, 3, 5):
            for u in (0.3, 0.7, 0.9):
                net = build_tandem(n, u)
                di = IntegratedAnalysis().analyze(net)
                dd = DecomposedAnalysis().analyze(net)
                for name in net.flows:
                    assert di.delay_of(name) <= dd.delay_of(name) + 1e-9

    def test_contributions_cover_path(self, tandem4):
        rep = IntegratedAnalysis().analyze(tandem4)
        fd = rep.delays[CONNECTION0]
        covered = [s for blk, _ in fd.contributions for s in blk]
        assert covered == [1, 2, 3, 4]

    def test_pairs_recorded_in_meta(self, tandem4):
        rep = IntegratedAnalysis().analyze(tandem4)
        assert rep.meta["n_pairs"] == 2
        assert set(rep.meta["kernel_wins"]) == {(1, 2), (3, 4)}

    def test_straddling_cross_flow_classified_per_visit(self, tandem4):
        # long_2 spans servers (2, 3): S1-type in pair (1,2) at server 2
        # and... it enters at 2, so it is S2-type in pair (1,2) and
        # S1-type in pair (3,4)
        rep = IntegratedAnalysis().analyze(tandem4)
        fd = rep.delays["long_2"]
        elements = [blk for blk, _ in fd.contributions]
        assert elements == [(2,), (3,)]

    def test_through_flow_single_contribution_per_pair(self, tandem4):
        rep = IntegratedAnalysis().analyze(tandem4)
        fd = rep.delays["long_1"]  # spans (1, 2): exactly the first pair
        assert [blk for blk, _ in fd.contributions] == [(1, 2)]

    def test_singleton_strategy_equals_capped_decomposition(self, tandem4):
        integ = IntegratedAnalysis(strategy=SingletonPartition()) \
            .analyze(tandem4)
        capped = DecomposedAnalysis(capped_propagation=True) \
            .analyze(tandem4)
        for name in tandem4.flows:
            assert integ.delay_of(name) == \
                pytest.approx(capped.delay_of(name), rel=1e-9)

    def test_family_kernel_toggle_never_hurts(self, tandem4):
        with_fam = IntegratedAnalysis(use_family_kernel=True) \
            .analyze(tandem4)
        without = IntegratedAnalysis(use_family_kernel=False) \
            .analyze(tandem4)
        assert with_fam.delay_of(CONNECTION0) <= \
            without.delay_of(CONNECTION0) + 1e-9

    def test_greedy_strategy_also_beats_decomposed(self, tandem4):
        integ = IntegratedAnalysis(strategy=GreedyPairing()) \
            .analyze(tandem4)
        dec = DecomposedAnalysis().analyze(tandem4)
        assert integ.delay_of(CONNECTION0) <= dec.delay_of(CONNECTION0)

    def test_single_server_network(self):
        net = build_tandem(1, 0.5)
        rep = IntegratedAnalysis().analyze(net)
        dec = DecomposedAnalysis().analyze(net)
        assert rep.delay_of(CONNECTION0) == \
            pytest.approx(dec.delay_of(CONNECTION0))


class TestMixedDisciplines:
    def test_sp_servers_fall_back_to_singletons(self):
        servers = [ServerSpec("a", 1.0, Discipline.STATIC_PRIORITY),
                   ServerSpec("b", 1.0, Discipline.STATIC_PRIORITY)]
        flows = [Flow("hi", TB, ["a", "b"], priority=0),
                 Flow("lo", TB, ["a", "b"], priority=1)]
        net = Network(servers, flows)
        rep = IntegratedAnalysis().analyze(net)
        # pair (a, b) is not FIFO -> processed as singletons
        fd = rep.delays["hi"]
        assert [blk for blk, _ in fd.contributions] == [("a",), ("b",)]
        assert rep.delay_of("hi") < rep.delay_of("lo")

    def test_fifo_pair_with_sp_tail(self):
        servers = [ServerSpec(1), ServerSpec(2),
                   ServerSpec(3, 1.0, Discipline.STATIC_PRIORITY)]
        flows = [Flow("f", TB, [1, 2, 3]),
                 Flow("x", TB, [3], priority=1)]
        net = Network(servers, flows)
        rep = IntegratedAnalysis().analyze(net)
        fd = rep.delays["f"]
        assert [blk for blk, _ in fd.contributions] == [(1, 2), (3,)]


class TestGeneralFeedForward:
    def test_diamond_topology(self):
        # two branches re-merging downstream
        servers = [ServerSpec(s) for s in ("src", "up", "down", "sink")]
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        flows = [
            Flow("a", tb, ["src", "up", "sink"]),
            Flow("b", tb, ["src", "down", "sink"]),
            Flow("c", tb, ["up"]),
            Flow("d", tb, ["down"]),
        ]
        net = Network(servers, flows)
        integ = IntegratedAnalysis(strategy=PairAlongPath("a")) \
            .analyze(net)
        dec = DecomposedAnalysis().analyze(net)
        for name in net.flows:
            assert integ.delay_of(name) <= dec.delay_of(name) + 1e-9
