"""Property-based tests on the integrated two-server kernels.

Randomized subsystems (token-bucket classes with random parameters,
random capacities) must satisfy, for every draw:

* both kernels dominate the single-server lower envelope (a two-server
  bound can never be smaller than either server's isolated delay
  contribution to the through class);
* the theorem-1 bound never exceeds the uncapped chain bound;
* the subsystem min is sound relative to a packet-level simulation.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fifo_family import family_pair_bound
from repro.core.subsystem import TwoServerSubsystem
from repro.core.theorem1 import theorem1_bound
from repro.curves.piecewise import PiecewiseLinearCurve as P


@st.composite
def subsystem_params(draw):
    """Random stable two-server subsystem (affine classes)."""
    c1 = draw(st.floats(min_value=0.5, max_value=2.0))
    c2 = draw(st.floats(min_value=0.5, max_value=2.0))
    cap = min(c1, c2)
    rho12 = draw(st.floats(min_value=0.01, max_value=0.3)) * cap
    rho1 = draw(st.floats(min_value=0.0, max_value=0.4)) * (c1 - rho12)
    rho2 = draw(st.floats(min_value=0.0, max_value=0.4)) * (c2 - rho12)
    s12 = draw(st.floats(min_value=0.1, max_value=5.0))
    s1 = draw(st.floats(min_value=0.0, max_value=5.0))
    s2 = draw(st.floats(min_value=0.0, max_value=5.0))
    return (P.affine(s12, rho12), P.affine(s1, rho1),
            P.affine(s2, rho2), c1, c2)


class TestKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(subsystem_params())
    def test_theorem1_never_exceeds_uncapped_chain(self, params):
        f12, f1, f2, c1, c2 = params
        res = theorem1_bound(f12, f1, f2, c1, c2)
        d1 = res.delay_server1
        d2_unc = (f12.shift_left_x(d1) + f2).horizontal_deviation(
            P.line(c2))
        assert res.delay_through <= d1 + d2_unc + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(subsystem_params())
    def test_theorem1_dominates_each_server_alone(self, params):
        f12, f1, f2, c1, c2 = params
        res = theorem1_bound(f12, f1, f2, c1, c2)
        d1_alone = (f12 + f1).horizontal_deviation(P.line(c1))
        assert res.delay_through >= d1_alone - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(subsystem_params())
    def test_family_finite_and_dominates_transmission(self, params):
        f12, f1, f2, c1, c2 = params
        res = family_pair_bound(f12, f1, f2, c1, c2, coarse=9,
                                refine=False)
        assert math.isfinite(res.delay_through)
        # the through burst must at least be transmitted by the slower
        # server: sigma12 / min(c1, c2) is a hard lower bound
        assert res.delay_through >= \
            f12.value_at_zero() / min(c1, c2) - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(subsystem_params())
    def test_subsystem_min_is_min(self, params):
        f12, f1, f2, c1, c2 = params
        sub = TwoServerSubsystem({"t": f12}, {"x1": f1}, {"x2": f2},
                                 c1, c2)
        res = sub.analyze()
        assert res.delay_through == pytest.approx(
            min(res.theorem1.delay_through, res.family.delay_through))

    @settings(max_examples=20, deadline=None)
    @given(subsystem_params(),
           st.floats(min_value=0.1, max_value=3.0))
    def test_monotone_in_through_burst(self, params, extra):
        f12, f1, f2, c1, c2 = params
        res_a = theorem1_bound(f12, f1, f2, c1, c2)
        res_b = theorem1_bound(f12 + extra, f1, f2, c1, c2)
        assert res_b.delay_through >= res_a.delay_through - 1e-9
