"""Unit tests for the Theorem-1 (joint busy period) kernel."""

import math

import pytest

from repro.core.theorem1 import theorem1_bound
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket
from repro.errors import InstabilityError


def paper_pair(u=0.8):
    """The first two servers of the paper's tandem at load u.

    Server 1: conn0 + short_1 + long_1 (through = conn0 + long_1? no —
    only conn0 continues to server 2 along with long_1).  In the tandem,
    through = {conn0, long_1}, cross1 = {short_1},
    cross2 = {short_2, long_2}.
    """
    rho = u / 4.0
    b = TokenBucket(1.0, rho, peak=1.0).constraint_curve()
    f12 = (b + b).simplified()          # conn0 and long_1
    f1 = b                              # short_1
    f2 = (b + b).simplified()           # short_2 and long_2
    return f12, f1, f2


class TestBasicProperties:
    def test_never_worse_than_decomposed(self):
        for u in (0.2, 0.5, 0.8, 0.95):
            f12, f1, f2 = paper_pair(u)
            res = theorem1_bound(f12, f1, f2, 1.0, 1.0)
            # decomposed: d1 + d2 with *uncapped* inflation
            d1 = res.delay_server1
            inflated = f12.shift_left_x(d1)
            d2_unc = (inflated + f2).horizontal_deviation(P.line(1.0))
            assert res.delay_through <= d1 + d2_unc + 1e-9

    def test_decomposition_into_parts(self):
        f12, f1, f2 = paper_pair(0.6)
        res = theorem1_bound(f12, f1, f2, 1.0, 1.0)
        assert res.delay_through == pytest.approx(
            res.delay_server1 + res.delay_server2)

    def test_busy_periods_positive(self):
        f12, f1, f2 = paper_pair(0.6)
        res = theorem1_bound(f12, f1, f2, 1.0, 1.0)
        assert res.busy_period1 > 0 and res.busy_period2 > 0

    def test_through_at_2_capped_by_line(self):
        f12, f1, f2 = paper_pair(0.6)
        res = theorem1_bound(f12, f1, f2, 1.0, 1.0)
        for t in (0.0, 0.5, 2.0, 10.0):
            assert res.through_at_2(t) <= t + 1e-9

    def test_through_at_2_dominates_entry(self):
        f12, f1, f2 = paper_pair(0.6)
        res = theorem1_bound(f12, f1, f2, 1.0, 1.0)
        # output constraint bounds traffic that entered constrained by f12
        # only for long intervals (short intervals are line-capped)
        assert res.through_at_2(50.0) >= f12(50.0) - 1e-9


class TestSpecialCases:
    def test_no_cross_traffic_anywhere(self):
        b = TokenBucket(1.0, 0.25, peak=1.0).constraint_curve()
        res = theorem1_bound(b, P.zero(), P.zero(), 1.0, 1.0)
        # a single peak-limited source through two idle unit servers
        # suffers no queueing at all
        assert res.delay_through == pytest.approx(0.0, abs=1e-9)

    def test_no_through_traffic(self):
        b = TokenBucket(1.0, 0.25).constraint_curve()
        res = theorem1_bound(P.zero(), b, b, 1.0, 1.0)
        assert res.delay_server1 == pytest.approx(1.0)
        assert res.delay_server2 == pytest.approx(1.0)

    def test_second_server_slower(self):
        f12, f1, f2 = paper_pair(0.5)
        fast = theorem1_bound(f12, f1, f2, 1.0, 1.0)
        slow = theorem1_bound(f12, f1, f2, 1.0, 0.8)
        assert slow.delay_through > fast.delay_through

    def test_line_rate_cap_tightens_burst(self):
        # a very bursty through flow: the cap must beat pure inflation
        f12 = P.affine(10.0, 0.1)
        f1 = P.affine(5.0, 0.3)
        f2 = P.affine(1.0, 0.3)
        res = theorem1_bound(f12, f1, f2, 1.0, 1.0)
        d1 = res.delay_server1
        uncapped_d2 = (f12.shift_left_x(d1) + f2) \
            .horizontal_deviation(P.line(1.0))
        assert res.delay_server2 < uncapped_d2

    def test_unstable_server1_raises(self):
        with pytest.raises(InstabilityError):
            theorem1_bound(P.affine(1.0, 0.7), P.affine(1.0, 0.5),
                           P.zero(), 1.0, 1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            theorem1_bound(P.zero(), P.zero(), P.zero(), 0.0, 1.0)
