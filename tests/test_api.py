"""Public API surface stability tests.

Guards the documented import paths: everything README.md and
docs/API.md reference must exist, be importable from the advertised
location, and carry a docstring.
"""

import inspect

import pytest

import repro


TOP_LEVEL = [
    # analyses
    "Analyzer", "DelayReport", "DecomposedAnalysis", "FeedbackAnalysis",
    "ServiceCurveAnalysis", "IntegratedAnalysis", "TwoServerSubsystem",
    "theorem1_bound", "PairAlongPath", "SingletonPartition",
    "compare_analyzers", "relative_improvement",
    # model
    "PiecewiseLinearCurve", "TokenBucket", "Flow", "Network",
    "ServerSpec", "Discipline", "build_tandem", "CONNECTION0",
    # applications
    "AdmissionController", "ConnectionRequest", "AdmissionDecision",
    "NetworkSimulator", "simulate_greedy",
    # errors
    "ReproError", "InstabilityError", "TopologyError", "AnalysisError",
]


class TestTopLevel:
    @pytest.mark.parametrize("name", TOP_LEVEL)
    def test_exported(self, name):
        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__

    @pytest.mark.parametrize("name", TOP_LEVEL)
    def test_documented(self, name):
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__


class TestSubpackageSurface:
    def test_curves(self):
        from repro.curves import (  # noqa: F401
            busy_period, convolve, deconvolve, hdev, vdev,
        )

    def test_network(self):
        from repro.network import (  # noqa: F401
            fat_tree, load_network, parking_lot, random_feedforward,
            save_network,
        )

    def test_servers(self):
        from repro.servers import (  # noqa: F401
            capped_output_curve, fifo_delay_bound, packetize_report,
            sp_delay_bounds, wfq_service_curve,
        )

    def test_analysis(self):
        from repro.analysis import (  # noqa: F401
            bottlenecks, deadline_slack, max_admissible_rate, propagate,
        )

    def test_core(self):
        from repro.core import (  # noqa: F401
            GreedyPairing, family_pair_bound, sp_pair_bound,
        )

    def test_sim(self):
        from repro.sim import (  # noqa: F401
            GreedySource, OnOffSource, simulate_adversarial,
        )

    def test_eval(self):
        from repro.eval import (  # noqa: F401
            admission_capacity, elasticities, evaluate_grid,
            figure_to_csv, render_chart, run_all, tightness_study,
        )


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import (
            CONNECTION0,
            DecomposedAnalysis,
            IntegratedAnalysis,
            ServiceCurveAnalysis,
            build_tandem,
        )

        net = build_tandem(n_hops=2, utilization=0.8)
        bounds = {}
        for analyzer in (DecomposedAnalysis(), ServiceCurveAnalysis(),
                         IntegratedAnalysis()):
            bounds[analyzer.name] = analyzer.analyze(net) \
                .delay_of(CONNECTION0)
        assert bounds["integrated"] < bounds["decomposed"] \
            < bounds["service_curve"]

    def test_custom_topology_snippet_runs(self):
        from repro import (
            Flow,
            IntegratedAnalysis,
            Network,
            ServerSpec,
            TokenBucket,
        )

        net = Network(
            servers=[ServerSpec("a"), ServerSpec("b")],
            flows=[
                Flow("through", TokenBucket(1.0, 0.2, peak=1.0),
                     ["a", "b"]),
                Flow("cross", TokenBucket(1.0, 0.2, peak=1.0), ["b"]),
            ],
        )
        report = IntegratedAnalysis().analyze(net)
        assert report.delay_of("through") >= 0
        assert report.delays["through"].contributions
