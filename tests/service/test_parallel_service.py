"""Durable service under parallel batch admission + kernel pinning.

Two properties of PR 9 meet here:

* ``AdmissionService.admit_batch`` keeps the write-ahead contract —
  every admission journaled (fsync'd) before its commit, in request
  order — while the admission *tests* run on a process pool; after a
  batch, recovery must verify bit-identically.
* The journal records the curve kernel its bounds were produced under;
  recovery refuses to verify or resume under a different kernel.
"""

import json

import pytest

from repro.admission.requests import ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import RecoveryError
from repro.network.generators import random_multicomponent
from repro.service import AdmissionService, load_journal
from repro.service.recovery import (
    recover_service,
    recover_state,
    verify_recovery,
)

N_COMPONENTS = 3
SPC = 3


def workload(seed=0):
    return random_multicomponent(seed, n_components=N_COMPONENTS,
                                 servers_per_component=SPC,
                                 flows_per_component=4,
                                 max_utilization=0.6)


def make_requests(n):
    reqs = []
    for i in range(n):
        c = i % N_COMPONENTS
        path = tuple(range(c * SPC, c * SPC + 2))
        reqs.append(ConnectionRequest(
            f"req{i}", TokenBucket(0.5, 0.03, peak=1.0), path, 100.0))
    return reqs


class TestServiceBatch:
    def test_batch_matches_serial_service(self, tmp_path):
        reqs = make_requests(6)
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path / "serial") as svc:
            serial = [svc.admit(r) for r in reqs]
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path / "par") as svc:
            batched = svc.admit_batch(reqs, workers=3)
        assert len(batched) == len(serial) == 6
        for s, p in zip(serial, batched):
            assert s.decision.admitted == p.decision.admitted
            assert s.decision.reason == p.decision.reason
            sb, pb = s.decision.new_flow_bound, p.decision.new_flow_bound
            if sb is not None:
                assert float(sb).hex() == float(pb).hex()

    def test_batch_journals_every_admission_in_order(self, tmp_path):
        reqs = make_requests(6)
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path) as svc:
            out = svc.admit_batch(reqs, workers=3)
            # read the live journal before close() rotates it into the
            # shutdown snapshot
            _, records, corrupt = load_journal(tmp_path)
        admitted = [d for d in out if d.decision.admitted]
        assert admitted  # the workload admits at least some
        assert corrupt == 0
        admits = [r for r in records if r["op"] == "admit"]
        assert [r["request"]["name"] for r in admits] == \
            [reqs[i].name for i, d in enumerate(out)
             if d.decision.admitted]
        seqs = [d.seq for d in out if d.seq is not None]
        assert seqs == sorted(seqs)  # journal order = request order

    def test_batch_then_recovery_verifies(self, tmp_path):
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path) as svc:
            svc.admit_batch(make_requests(6), workers=3)
            admitted = svc.admitted
        report = verify_recovery(tmp_path)
        assert report.ok, report.mismatches
        state = recover_state(tmp_path)
        assert state.admitted == admitted

    def test_workers_one_equals_serial_loop(self, tmp_path):
        reqs = make_requests(4)
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path) as svc:
            out = svc.admit_batch(reqs, workers=1)
        assert len(out) == 4


class TestKernelPinning:
    def test_fresh_journal_records_kernel(self, tmp_path):
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path, kernel="grid") as svc:
            svc.admit(make_requests(1)[0])
            _, records, _ = load_journal(tmp_path)
        base = records[0]
        assert base["op"] == "base"
        assert base["kernel"] == "grid"
        assert recover_state(tmp_path).kernel == "grid"

    def test_default_kernel_recorded_not_blank(self, tmp_path):
        from repro.curves.kernels import current_kernel

        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path) as svc:
            svc.admit(make_requests(1)[0])
        assert recover_state(tmp_path).kernel == current_kernel()

    def test_snapshot_carries_kernel(self, tmp_path):
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path, kernel="exact",
                              snapshot_every=1) as svc:
            svc.admit(make_requests(1)[0])
        snapshot, _, _ = load_journal(tmp_path)
        assert snapshot is not None and snapshot["kernel"] == "exact"
        assert recover_state(tmp_path).kernel == "exact"

    def test_verify_under_wrong_kernel_refused(self, tmp_path):
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path, kernel="exact") as svc:
            svc.admit(make_requests(1)[0])
        with pytest.raises(RecoveryError, match="recorded under curve "
                                                "kernel 'exact'"):
            verify_recovery(tmp_path, kernel="grid")
        # matching expectation passes
        assert verify_recovery(tmp_path, kernel="exact").ok

    def test_verify_uses_journaled_kernel_by_default(self, tmp_path):
        from repro.curves.kernels import use_kernel

        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path, kernel="grid") as svc:
            svc.admit_batch(make_requests(4), workers=2)
        # ambient kernel differs; verification must still re-analyze
        # under the journaled grid kernel and match bit-for-bit
        with use_kernel("exact"):
            report = verify_recovery(tmp_path)
        assert report.ok, report.mismatches

    def test_resume_under_wrong_kernel_refused(self, tmp_path):
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path, kernel="exact") as svc:
            svc.admit(make_requests(1)[0])
        with pytest.raises(RecoveryError, match="two kernels"):
            recover_service(tmp_path, analyzer=DecomposedAnalysis(),
                            kernel="grid")

    def test_resumed_service_pinned_to_journaled_kernel(self, tmp_path):
        reqs = make_requests(4)
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path, kernel="grid") as svc:
            svc.admit(reqs[0])
        svc2 = recover_service(tmp_path, analyzer=DecomposedAnalysis())
        try:
            svc2.admit(reqs[1])
        finally:
            svc2.close()
        # the resumed service's records (now rotated into the shutdown
        # snapshot) stay under the journaled grid kernel
        assert recover_state(tmp_path).kernel == "grid"
        assert verify_recovery(tmp_path).ok

    def test_legacy_journal_without_kernel_tolerated(self, tmp_path):
        with AdmissionService(workload(), DecomposedAnalysis(),
                              journal_dir=tmp_path) as svc:
            svc.admit(make_requests(1)[0])
        # strip the kernel fields (journal lines and snapshot alike),
        # simulating a journal from before kernel recording
        jpath = tmp_path / "journal.jsonl"
        lines = []
        for ln in jpath.read_text().splitlines():
            rec = json.loads(ln)
            rec.pop("kernel", None)
            lines.append(json.dumps(rec, sort_keys=True))
        jpath.write_text("".join(line + "\n" for line in lines))
        spath = tmp_path / "snapshot.json"
        if spath.exists():
            snap = json.loads(spath.read_text())
            snap.pop("kernel", None)
            spath.write_text(json.dumps(snap, sort_keys=True))
        state = recover_state(tmp_path)
        assert state.kernel == ""
        # legacy journals verify under the caller's kernel expectation
        assert verify_recovery(tmp_path, kernel="exact").ok
        svc2 = recover_service(tmp_path, analyzer=DecomposedAnalysis(),
                               kernel="exact")
        svc2.close()
