"""Unit tests for the circuit breaker state machine."""

import pytest

from repro.context.metrics import MetricsRegistry
from repro.errors import CircuitOpenError, ResilienceError
from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def breaker(threshold=3, reset=10.0, metrics=None):
    clock = FakeClock()
    b = CircuitBreaker("test", failure_threshold=threshold,
                       reset_timeout=reset, clock=clock, metrics=metrics)
    return b, clock


class TestValidation:
    def test_rejects_zero_threshold(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker("b", failure_threshold=0)

    def test_rejects_nonpositive_reset(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker("b", reset_timeout=0.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b, _ = breaker()
        assert b.state == CLOSED and b.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        b, _ = breaker(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN and not b.allow()

    def test_success_resets_consecutive_count(self):
        b, _ = breaker(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # never 2 consecutive

    def test_half_open_after_cooldown_single_probe(self):
        b, clock = breaker(threshold=1, reset=10.0)
        b.record_failure()
        assert b.state == OPEN
        clock.advance(9.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.state == HALF_OPEN
        assert b.allow()        # the probe
        assert not b.allow()    # concurrent caller refused

    def test_probe_success_closes(self):
        b, clock = breaker(threshold=1, reset=5.0)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED and b.allow()

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        b, clock = breaker(threshold=1, reset=5.0)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_failure()
        assert b.state == OPEN
        clock.advance(4.0)
        assert not b.allow()  # cooldown restarted at re-open
        clock.advance(1.0)
        assert b.allow()

    def test_stale_probe_expires_after_reset_timeout(self):
        b, clock = breaker(threshold=1, reset=5.0)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()        # probe granted, verdict never arrives
        assert not b.allow()
        clock.advance(5.0)      # probe verdict overdue: slot released
        assert b.state == HALF_OPEN
        assert b.allow()        # a fresh probe may go through

    def test_release_probe_frees_slot_without_verdict(self):
        b, clock = breaker(threshold=1, reset=5.0)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.release_probe()
        assert b.state == HALF_OPEN          # no success/failure recorded
        assert b.consecutive_failures == 1   # unchanged
        assert b.allow()                     # slot free again

    def test_release_probe_is_noop_when_not_probing(self):
        b, _ = breaker()
        b.release_probe()
        assert b.state == CLOSED and b.allow()

    def test_manual_trip_and_reset(self):
        b, _ = breaker()
        b.trip()
        assert b.state == OPEN
        b.reset()
        assert b.state == CLOSED and b.consecutive_failures == 0


class TestCall:
    def test_call_passes_through_and_records(self):
        b, _ = breaker()
        assert b.call(lambda x: x + 1, 2) == 3

    def test_call_records_failure_and_propagates(self):
        b, _ = breaker(threshold=1)

        def boom():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            b.call(boom)
        assert b.state == OPEN

    def test_open_call_raises_circuit_open_with_retry(self):
        b, clock = breaker(threshold=1, reset=10.0)
        b.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as exc_info:
            b.call(lambda: 1)
        err = exc_info.value
        assert err.breaker == "test"
        assert err.retry_after == pytest.approx(6.0)


class TestMetrics:
    def test_full_cycle_counters(self):
        metrics = MetricsRegistry()
        b, clock = breaker(threshold=2, reset=5.0, metrics=metrics)
        b.record_failure()
        b.record_failure()        # opens
        assert not b.allow()      # rejection
        clock.advance(5.0)
        assert b.allow()          # probe
        b.record_success()        # closes

        m = metrics.as_dict("breaker.test.")
        assert m["breaker.test.failures"] == 2
        assert m["breaker.test.opens"] == 1
        assert m["breaker.test.rejections"] == 1
        assert m["breaker.test.probes"] == 1
        assert m["breaker.test.closes"] == 1
        assert m["breaker.test.successes"] == 1
        assert m["breaker.test.state"] == 0.0  # closed gauge

    def test_probe_timeout_and_abort_counters(self):
        metrics = MetricsRegistry()
        b, clock = breaker(threshold=1, reset=5.0, metrics=metrics)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()          # probe 1: verdict never arrives
        clock.advance(5.0)
        assert b.allow()          # probe 1 expired, probe 2 granted
        b.release_probe()         # probe 2 abandoned without verdict
        m = metrics.as_dict("breaker.test.")
        assert m["breaker.test.probe_timeouts"] == 1
        assert m["breaker.test.probe_aborts"] == 1
        assert m["breaker.test.probes"] == 2

    def test_state_gauge_tracks_open(self):
        metrics = MetricsRegistry()
        b, _ = breaker(threshold=1, metrics=metrics)
        b.record_failure()
        assert metrics.get("breaker.test.state") == 2.0


class TestIntrospection:
    def test_as_dict(self):
        b, _ = breaker(threshold=4, reset=7.0)
        d = b.as_dict()
        assert d == {
            "name": "test",
            "state": CLOSED,
            "consecutive_failures": 0,
            "failure_threshold": 4,
            "reset_timeout": 7.0,
        }
