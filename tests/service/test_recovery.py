"""Crash-recovery tests: replay, bit-identical verification, resume.

The central acceptance drill: kill a journaled service mid-stream
(simulated by abandoning it without close — exactly what SIGKILL
leaves behind, including a possibly-truncated final line), then prove
``recover_state``/``verify_recovery`` reconstruct the admitted set
exactly with bit-identical re-analyzed bounds.
"""

import json

import pytest

from repro.admission.requests import ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import RecoveryError
from repro.network.topology import Network, ServerSpec
from repro.service import (
    AdmissionService,
    ConservativeAnalysis,
    recover_service,
    recover_state,
    verify_recovery,
)
from repro.service.recovery import resolve_analyzer


def empty_net(n=2):
    return Network([ServerSpec(k) for k in range(1, n + 1)], [])


def request(name, deadline=60.0, rho=0.04, path=(1, 2)):
    return ConnectionRequest(name, TokenBucket(1.0, rho), path, deadline)


def crashed_service(journal_dir, *, n_admit=4, releases=(),
                    snapshot_every=1000, analyzer=None):
    """Run admissions and abandon the service without closing it."""
    svc = AdmissionService(
        empty_net(), analyzer or IntegratedAnalysis(),
        journal_dir=journal_dir, incremental=False,
        snapshot_every=snapshot_every)
    for k in range(n_admit):
        dec = svc.admit(request(f"c{k}"))
        assert dec.admitted
    for name in releases:
        svc.release(name)
    # no close(): the process dies here.  Only the journal survives.
    admitted = svc.admitted
    svc.journal.close()  # release the fd; the file is already fsync'd
    return admitted


class TestResolveAnalyzer:
    def test_known_names(self):
        assert resolve_analyzer("integrated").name == "integrated"
        assert resolve_analyzer("decomposed").name == "decomposed"
        assert isinstance(resolve_analyzer("conservative"),
                          ConservativeAnalysis)

    def test_engine_names_resolve_cold(self):
        assert resolve_analyzer("incremental+integrated").name == \
            "integrated"

    def test_unknown_raises(self):
        with pytest.raises(RecoveryError):
            resolve_analyzer("nonsense")


class TestStructuralReplay:
    def test_exact_admitted_set_after_kill(self, tmp_path):
        d = tmp_path / "j"
        admitted = crashed_service(d, n_admit=5, releases=("c1", "c3"))
        state = recover_state(d)
        assert state.admitted == admitted == ("c0", "c2", "c4")
        assert set(state.network.flows) == {"c0", "c2", "c4"}
        assert state.analyzer_name == "integrated"
        assert state.replayed == 7  # 5 admits + 2 releases
        assert state.corrupt_lines == 0

    def test_truncated_final_line_is_dropped(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=3)
        path = d / "journal.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        # crash mid-append: the last admit was never acknowledged
        path.write_text("".join(lines[:-1]) + lines[-1][:25])
        state = recover_state(d)
        assert state.admitted == ("c0", "c1")
        assert state.corrupt_lines == 1

    def test_replay_from_snapshot_plus_tail(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=5, releases=("c0",),
                        snapshot_every=4)
        state = recover_state(d)
        assert state.admitted == ("c1", "c2", "c3", "c4")
        assert state.snapshot_seq > 0
        assert state.last_seq > state.snapshot_seq

    def test_double_release_replays_idempotently(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=2, releases=("c0",))
        # hand-forge a duplicate release record (crash between journal
        # write and in-memory apply can legitimately journal twice)
        path = d / "journal.jsonl"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        dup = dict(records[-1])
        assert dup["op"] == "release"
        dup["seq"] = records[-1]["seq"] + 1
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(dup) + "\n")
        state = recover_state(d)
        assert state.admitted == ("c1",)
        assert state.skipped == 1

    def test_duplicate_admit_replays_idempotently(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=2)
        path = d / "journal.jsonl"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        dup = dict(records[-1])
        assert dup["op"] == "admit"
        dup["seq"] = records[-1]["seq"] + 1
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(dup) + "\n")
        state = recover_state(d)
        assert state.admitted == ("c0", "c1")
        assert state.skipped == 1

    def test_empty_journal_raises(self, tmp_path):
        d = tmp_path / "j"
        d.mkdir()
        (d / "journal.jsonl").write_text("")
        with pytest.raises(RecoveryError):
            recover_state(d)


class TestBitIdenticalVerification:
    def test_clean_journal_verifies(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=4, releases=("c2",))
        report = verify_recovery(d)
        assert report.ok
        assert report.checked == 4  # every journaled admit re-analyzed

    def test_verifies_across_snapshot_rotation(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=6, snapshot_every=4)
        report = verify_recovery(d)
        assert report.ok
        # rotated-away admits are vouched for by the snapshot bounds;
        # the post-rotation tail is re-analyzed step by step
        assert report.checked >= 2

    def test_snapshot_bounds_checked_when_newest(self, tmp_path):
        d = tmp_path / "j"
        svc = AdmissionService(
            empty_net(), IntegratedAnalysis(), journal_dir=d,
            incremental=False)
        svc.admit(request("a"))
        svc.admit(request("b"))
        svc.close()  # final checkpoint: snapshot is the newest state
        report = verify_recovery(d)
        assert report.ok
        assert set(report.final_bounds) == {"a", "b"}

    def test_tampered_bound_is_detected(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=2)
        path = d / "journal.jsonl"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        for rec in records:
            if rec["op"] == "admit" and rec["request"]["name"] == "c1":
                rec["bound_hex"] = float(rec["bound"] * 2.0).hex()
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        report = verify_recovery(d)
        assert not report.ok
        assert len(report.mismatches) == 1
        assert "c1" in report.mismatches[0]
        assert "MISMATCH" in report.render()

    def test_different_analyzers_verify_with_their_own(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=2, analyzer=DecomposedAnalysis())
        records = [json.loads(line) for line in
                   (d / "journal.jsonl").read_text().splitlines()]
        admits = [r for r in records if r["op"] == "admit"]
        assert all(r["verify_analyzer"] == "decomposed" for r in admits)
        assert verify_recovery(d).ok


class TestRecoverService:
    def test_resumed_service_continues_sequence(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=3)
        svc = recover_service(d)
        assert svc.admitted == ("c0", "c1", "c2")
        dec = svc.admit(request("c3"))
        assert dec.admitted
        assert dec.seq == 5  # base(1) + 3 admits, resumed at 5
        svc.close()
        # the whole history — old and new process — still verifies
        assert verify_recovery(d).ok

    def test_recover_service_refuses_tampered_journal(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=1)
        path = d / "journal.jsonl"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        records[-1]["bound_hex"] = (12345.5).hex()
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        with pytest.raises(RecoveryError):
            recover_service(d)

    def test_verify_false_skips_the_check(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=1)
        path = d / "journal.jsonl"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        records[-1]["bound_hex"] = (12345.5).hex()
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        svc = recover_service(d, verify=False)
        assert svc.admitted == ("c0",)
        svc.close()

    def test_analyzer_override(self, tmp_path):
        d = tmp_path / "j"
        crashed_service(d, n_admit=1)
        svc = recover_service(d, analyzer=DecomposedAnalysis(),
                              incremental=False)
        assert svc.controller.chain[0].name == "decomposed"
        svc.close()

    def test_kill_resume_kill_resume(self, tmp_path):
        """Two crash/recover cycles keep history consistent."""
        d = tmp_path / "j"
        crashed_service(d, n_admit=2)
        svc = recover_service(d, incremental=False)
        svc.admit(request("c2"))
        svc.journal.close()  # second crash, again without close()
        svc2 = recover_service(d, incremental=False)
        assert svc2.admitted == ("c0", "c1", "c2")
        assert verify_recovery(d).ok
        svc2.close()
