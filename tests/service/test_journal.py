"""Unit tests for the write-ahead journal and durable file primitives."""

import json
import math
import os

import pytest

from repro.admission.requests import ConnectionRequest
from repro.curves.token_bucket import TokenBucket
from repro.errors import JournalError
from repro.network.topology import Network, ServerSpec
from repro.service.journal import (
    Journal,
    load_journal,
    request_from_record,
    request_to_record,
)
from repro.utils.durable import (
    DurableAppender,
    atomic_write_text,
    iter_jsonl,
    repair_torn_tail,
)


def tandem(n=2):
    return Network([ServerSpec(k) for k in range(1, n + 1)], [])


def request(name="c0", peak=1.0):
    return ConnectionRequest(name, TokenBucket(1.0, 0.02, peak=peak),
                             (1, 2), 30.0)


class TestDurablePrimitives:
    def test_appender_fsyncs_every_append(self, tmp_path, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd),
                                                     real(fd))[1])
        with DurableAppender(tmp_path / "a.jsonl") as app:
            before = len(calls)
            app.append('{"x": 1}')
            app.append('{"x": 2}')
            assert len(calls) >= before + 2
        assert (tmp_path / "a.jsonl").read_text().count("\n") == 2

    def test_appender_appends_not_truncates(self, tmp_path):
        path = tmp_path / "a.jsonl"
        with DurableAppender(path) as app:
            app.append("one")
        with DurableAppender(path) as app:
            app.append("two")
        assert path.read_text().splitlines() == ["one", "two"]

    def test_appender_refuses_after_close(self, tmp_path):
        app = DurableAppender(tmp_path / "a.jsonl")
        app.close()
        with pytest.raises(ValueError):
            app.append("late")

    def test_repair_torn_tail(self, tmp_path):
        path = tmp_path / "a.jsonl"
        assert repair_torn_tail(path) == 0          # missing file
        path.write_text("")
        assert repair_torn_tail(path) == 0          # empty file
        path.write_text("complete\n")
        assert repair_torn_tail(path) == 0          # clean tail
        path.write_text("complete\npart")
        assert repair_torn_tail(path) == 4
        assert path.read_text() == "complete\n"
        path.write_text("onlypartial")               # no newline at all
        assert repair_torn_tail(path) == len("onlypartial")
        assert path.read_text() == ""

    def test_appender_repairs_torn_tail_on_reopen(self, tmp_path):
        path = tmp_path / "a.jsonl"
        with DurableAppender(path) as app:
            app.append('{"seq": 1}')
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "op')  # crash mid-append
        with DurableAppender(path) as app:
            app.append('{"seq": 2}')
        parsed = list(iter_jsonl(path))
        # the torn line is gone, not concatenated with the new record
        assert all(ok for _, ok in parsed)
        assert [r["seq"] for r, _ in parsed] == [1, 2]

    def test_atomic_write_replaces_completely(self, tmp_path):
        path = tmp_path / "f.txt"
        atomic_write_text(path, "old content")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert not path.with_name("f.txt.tmp").exists()

    def test_atomic_write_fsyncs_tmp_before_replace(self, tmp_path,
                                                    monkeypatch):
        order = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (order.append("fsync"),
                                        real_fsync(fd))[1])
        monkeypatch.setattr(os, "replace",
                            lambda a, b: (order.append("replace"),
                                          real_replace(a, b))[1])
        atomic_write_text(tmp_path / "f.txt", "x")
        assert "fsync" in order and "replace" in order
        assert order.index("fsync") < order.index("replace")
        # the parent directory is fsynced after the rename
        assert order.index("replace") < len(order) - 1 \
            and order[-1] == "fsync"

    def test_iter_jsonl_flags_corrupt_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\nnot json\n[1,2]\n{"b": 2}\n')
        parsed = list(iter_jsonl(path))
        assert [ok for _, ok in parsed] == [True, False, False, True]


class TestRequestRoundTrip:
    def test_round_trip(self):
        req = request()
        back = request_from_record(request_to_record(req))
        assert back == req

    def test_unbounded_peak_round_trips(self):
        req = request(peak=math.inf)
        rec = request_to_record(req)
        assert rec["peak"] is None
        assert request_from_record(rec).bucket.peak == math.inf

    def test_malformed_record_raises_journal_error(self):
        with pytest.raises(JournalError):
            request_from_record({"name": "x"})


class TestJournal:
    def test_fresh_dir_writes_base_and_admits(self, tmp_path):
        j = Journal(tmp_path / "j")
        j.write_base(tandem(), analyzer="integrated")
        seq = j.write_admit(request(), 1.5, analyzer="integrated",
                            verify_analyzer="integrated",
                            degradation="normal")
        assert seq == 2
        j.close()
        snapshot, records, corrupt = load_journal(tmp_path / "j")
        assert snapshot is None and corrupt == 0
        assert [r["op"] for r in records] == ["base", "admit"]
        assert records[1]["bound_hex"] == (1.5).hex()

    def test_existing_state_requires_resume(self, tmp_path):
        d = tmp_path / "j"
        j = Journal(d)
        j.write_base(tandem(), analyzer="integrated")
        j.close()
        with pytest.raises(JournalError):
            Journal(d)
        j2 = Journal(d, resume=True)
        assert j2.last_seq == 1
        j2.close()

    def test_snapshot_rotates_journal(self, tmp_path):
        d = tmp_path / "j"
        j = Journal(d)
        j.write_base(tandem(), analyzer="integrated")
        j.write_admit(request("a"), 1.0, analyzer="integrated",
                      verify_analyzer="integrated", degradation="normal")
        j.snapshot(tandem(), ["a"], analyzer="integrated",
                   bounds={"a": 1.0})
        post = j.write_release("a")
        j.close()
        snapshot, records, _ = load_journal(d)
        assert snapshot["admitted"] == ["a"]
        assert snapshot["bounds_hex"] == {"a": (1.0).hex()}
        # only the post-snapshot record is replayed
        assert [r["seq"] for r in records] == [post]

    def test_seq_continues_across_rotation_and_resume(self, tmp_path):
        d = tmp_path / "j"
        j = Journal(d)
        j.write_base(tandem(), analyzer="integrated")
        j.snapshot(tandem(), [], analyzer="integrated")
        j.write_release("ghost")
        last = j.last_seq
        j.close()
        j2 = Journal(d, resume=True)
        assert j2.write_release("ghost2") == last + 1
        j2.close()

    def test_corrupt_trailing_line_is_counted_not_fatal(self, tmp_path):
        d = tmp_path / "j"
        j = Journal(d)
        j.write_base(tandem(), analyzer="integrated")
        j.write_admit(request("a"), 1.0, analyzer="integrated",
                      verify_analyzer="integrated", degradation="normal")
        j.close()
        path = d / "journal.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "seq": 3, "op": "adm')  # crash mid-append
        snapshot, records, corrupt = load_journal(d)
        assert corrupt == 1
        assert [r["op"] for r in records] == ["base", "admit"]

    def test_resume_over_torn_tail_keeps_next_record(self, tmp_path):
        """SIGKILL mid-append, resume, admit: the post-crash record
        must not be concatenated onto the torn line and lost."""
        d = tmp_path / "j"
        j = Journal(d)
        j.write_base(tandem(), analyzer="integrated")
        j.write_admit(request("a"), 1.0, analyzer="integrated",
                      verify_analyzer="integrated", degradation="normal")
        j.close()
        with open(d / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "seq": 3, "op": "adm')  # crash mid-append
        j2 = Journal(d, resume=True)
        # the torn record was never acknowledged; its seq is free
        assert j2.last_seq == 2
        assert j2.write_admit(request("b"), 2.0, analyzer="integrated",
                              verify_analyzer="integrated",
                              degradation="normal") == 3
        j2.close()
        _, records, corrupt = load_journal(d)
        assert corrupt == 0  # torn tail repaired on resume
        assert [r["op"] for r in records] == ["base", "admit", "admit"]
        assert records[-1]["request"]["name"] == "b"
        assert records[-1]["seq"] == 3

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(JournalError):
            load_journal(tmp_path)

    def test_corrupt_snapshot_raises(self, tmp_path):
        d = tmp_path / "j"
        d.mkdir()
        (d / "snapshot.json").write_text("{broken")
        with pytest.raises(JournalError):
            load_journal(d)

    def test_records_are_json_objects_with_version(self, tmp_path):
        d = tmp_path / "j"
        j = Journal(d)
        j.write_base(tandem(), analyzer="integrated")
        j.close()
        line = (d / "journal.jsonl").read_text().splitlines()[0]
        rec = json.loads(line)
        assert rec["v"] == 1 and rec["seq"] == 1
