"""Integration tests for the durable admission service.

Degradation scenarios are driven through
:mod:`repro.resilience` fault transformations (ServerDegradation /
ServerFailure) and breaker-tripping analyzers, per the paper's
admission-control application: the service must keep answering — with
honestly tagged, sound bounds — while its analysis stack fails around
it.
"""

import json
import signal

import pytest

from repro.admission.requests import ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.base import Analyzer
from repro.context import AnalysisContext
from repro.context.metrics import MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import (
    AdmissionError,
    AnalysisTimeoutError,
    ServiceError,
)
from repro.network.topology import Network, ServerSpec
from repro.resilience import HALF_OPEN, OPEN
from repro.resilience.faults import ServerDegradation, ServerFailure
from repro.service import (
    DEGRADATION_CACHED,
    DEGRADATION_CLOSED_FORM,
    DEGRADATION_DEGRADED,
    DEGRADATION_NORMAL,
    AdmissionService,
    load_journal,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FlakyAnalyzer(Analyzer):
    """Times out for the first ``failures`` calls, then recovers."""

    name = "flaky"

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0
        self._inner = IntegratedAnalysis()

    def analyze(self, network, *, ctx=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise AnalysisTimeoutError("wedged kernel")
        return self._inner.analyze(network)


class BuggyAnalyzer(Analyzer):
    """Raises a non-AnalysisError — an analyzer *bug*, not a timeout."""

    name = "buggy"

    def analyze(self, network, *, ctx=None):
        raise TypeError("bug in analyzer")


def empty_net(n=2):
    return Network([ServerSpec(k) for k in range(1, n + 1)], [])


def request(name, deadline=60.0, rho=0.05, path=(1, 2)):
    return ConnectionRequest(name, TokenBucket(1.0, rho), path, deadline)


def service(tmp_path, analyzer=None, **kwargs):
    kwargs.setdefault("incremental", False)
    return AdmissionService(
        empty_net(), analyzer or IntegratedAnalysis(),
        journal_dir=tmp_path / "journal", **kwargs)


class TestServing:
    def test_admit_commits_journals_and_tags_normal(self, tmp_path):
        with service(tmp_path) as svc:
            dec = svc.admit(request("a"))
            assert dec.admitted
            assert dec.degradation == DEGRADATION_NORMAL
            assert dec.seq == 2  # base record is seq 1
            assert "a" in svc.network.flows
            _, records, _ = load_journal(tmp_path / "journal")
            assert [r["op"] for r in records] == ["base", "admit"]

    def test_rejection_is_not_journaled(self, tmp_path):
        with service(tmp_path) as svc:
            dec = svc.admit(request("tight", deadline=1e-9))
            assert not dec.admitted and dec.seq is None
            assert svc.journal.last_seq == 1  # only the base record

    def test_test_does_not_commit_or_journal(self, tmp_path):
        with service(tmp_path) as svc:
            dec = svc.test(request("a"))
            assert dec.admitted
            assert "a" not in svc.network.flows
            assert svc.journal.last_seq == 1

    def test_journal_write_failure_leaves_controller_unchanged(
            self, tmp_path, monkeypatch):
        svc = service(tmp_path)
        monkeypatch.setattr(
            svc.journal, "write_admit",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(OSError):
            svc.admit(request("a"))
        # WAL ordering: the un-journaled admission never committed
        assert "a" not in svc.network.flows
        assert svc.admitted == ()

    def test_release_journals_then_applies(self, tmp_path):
        with service(tmp_path) as svc:
            svc.admit(request("a"))
            seq = svc.release("a")
            assert seq == 3
            assert "a" not in svc.network.flows

    def test_release_unknown_raises_typed_error(self, tmp_path):
        with service(tmp_path) as svc:
            with pytest.raises(AdmissionError) as exc_info:
                svc.release("ghost")
            assert exc_info.value.flow == "ghost"

    def test_release_missing_ok_is_noop(self, tmp_path):
        with service(tmp_path) as svc:
            assert svc.release("ghost", missing_ok=True) is None
            assert svc.journal.last_seq == 1

    def test_snapshot_every_rotates_journal(self, tmp_path):
        with service(tmp_path, snapshot_every=2) as svc:
            svc.admit(request("a"))
            svc.admit(request("b", path=(2,)))
            snapshot, records, _ = load_journal(tmp_path / "journal")
            assert snapshot is not None
            assert sorted(snapshot["admitted"]) == ["a", "b"]
            assert records == []  # rotated away

    def test_close_is_idempotent_and_seals_service(self, tmp_path):
        svc = service(tmp_path)
        svc.admit(request("a"))
        svc.close()
        svc.close()
        assert svc.closed
        with pytest.raises(ServiceError):
            svc.admit(request("b"))
        with pytest.raises(ServiceError):
            svc.release("a")
        snapshot, _, _ = load_journal(tmp_path / "journal")
        assert snapshot["admitted"] == ["a"]
        assert snapshot["bounds_hex"]["a"]  # final bounds checkpointed

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ServiceError):
            service(tmp_path, snapshot_every=0)
        with pytest.raises(ServiceError):
            service(tmp_path, shed_latency_s=-1.0)


class TestBreakersAndDegradation:
    def test_breaker_opens_then_recovers(self, tmp_path):
        """flaky primary: normal -> degraded (open breaker) -> normal."""
        clock = FakeClock()
        metrics = MetricsRegistry()
        flaky = FlakyAnalyzer(failures=2)
        svc = service(tmp_path, analyzer=flaky,
                      fallbacks=(DecomposedAnalysis(),),
                      breaker_threshold=2, breaker_reset_s=10.0,
                      clock=clock, ctx=AnalysisContext(metrics=metrics))
        # each admission attempts flaky once; two timeouts trip it
        d1 = svc.admit(request("a"))
        assert d1.admitted and d1.degradation == DEGRADATION_DEGRADED
        assert d1.analyzer == "decomposed"
        assert svc.breaker_states()["flaky"] == "closed"
        d2 = svc.admit(request("b", path=(2,)))
        assert d2.degradation == DEGRADATION_DEGRADED
        assert svc.breaker_states()["flaky"] == OPEN
        # while open the flaky rung is skipped outright
        calls_before = flaky.calls
        d3 = svc.admit(request("c", path=(1,)))
        assert d3.degradation == DEGRADATION_DEGRADED
        assert flaky.calls == calls_before
        # cooldown elapses; the half-open probe succeeds and closes it
        clock.advance(10.0)
        d4 = svc.admit(request("d", path=(2,)))
        assert d4.degradation == DEGRADATION_NORMAL
        assert d4.analyzer == "flaky"
        assert svc.breaker_states()["flaky"] == "closed"
        m = metrics.as_dict()
        assert m["breaker.flaky.opens"] == 1
        assert m["breaker.flaky.closes"] == 1
        assert m["breaker.flaky.probes"] == 1
        assert m["service.degradation.degraded"] == 3
        assert m["service.degradation.normal"] == 1
        svc.close()

    def test_all_breakers_open_falls_to_closed_form(self, tmp_path):
        clock = FakeClock()
        svc = service(tmp_path, analyzer=FlakyAnalyzer(failures=99),
                      breaker_threshold=1, clock=clock)
        dec = svc.admit(request("a"))
        assert dec.admitted
        assert dec.degradation == DEGRADATION_CLOSED_FORM
        assert dec.analyzer == "conservative"
        svc.close()

    def test_conservative_disabled_fails_closed(self, tmp_path):
        clock = FakeClock()
        svc = service(tmp_path, analyzer=FlakyAnalyzer(failures=99),
                      conservative=False, breaker_threshold=1, clock=clock)
        svc.admit(request("a"))          # trips the breaker
        dec = svc.admit(request("b"))    # breaker open, nothing answers
        assert not dec.admitted
        assert dec.degradation == "unavailable"
        svc.close()

    def test_manual_shed_level_2_forces_closed_form(self, tmp_path):
        with service(tmp_path) as svc:
            svc.set_shed_level(2)
            dec = svc.admit(request("a"))
            assert dec.degradation == DEGRADATION_CLOSED_FORM
            svc.set_shed_level(0)
            dec = svc.admit(request("b", path=(2,)))
            assert dec.degradation == DEGRADATION_NORMAL

    def test_shed_level_1_serves_from_engine_cache(self, tmp_path):
        with service(tmp_path, incremental=True) as svc:
            svc.admit(request("a"))
            svc.set_shed_level(1)
            dec = svc.admit(request("b", path=(2,)))
            assert dec.admitted
            assert dec.degradation == DEGRADATION_CACHED
            assert dec.analyzer.startswith("incremental+")

    def test_shed_level_1_without_engine_keeps_primary(self, tmp_path):
        # incremental=False: no cache rung exists, so level 1 keeps the
        # primary instead of silently collapsing into level 2
        with service(tmp_path) as svc:
            svc.set_shed_level(1)
            dec = svc.admit(request("a"))
            assert dec.admitted
            assert dec.degradation == DEGRADATION_NORMAL
            assert dec.analyzer == "integrated"

    def test_analyzer_bug_feeds_breaker_and_does_not_wedge_probe(
            self, tmp_path):
        clock = FakeClock()
        svc = service(tmp_path, analyzer=BuggyAnalyzer(),
                      breaker_threshold=1, breaker_reset_s=10.0,
                      clock=clock)
        # the bug propagates, but the breaker still hears the failure
        with pytest.raises(TypeError):
            svc.admit(request("a"))
        assert svc.breaker_states()["buggy"] == OPEN
        # while open the buggy rung is gated off and the chain answers
        dec = svc.admit(request("a"))
        assert dec.admitted
        assert dec.degradation == DEGRADATION_CLOSED_FORM
        # a half-open probe that hits the bug re-opens the breaker
        # instead of leaking the probe slot forever
        clock.advance(10.0)
        with pytest.raises(TypeError):
            svc.admit(request("b", path=(2,)))
        assert svc.breaker_states()["buggy"] == OPEN
        clock.advance(10.0)
        assert svc.breakers["buggy"].allow()  # probing possible again
        svc.close()

    def test_interrupt_releases_probe_without_health_verdict(
            self, tmp_path):
        clock = FakeClock()
        flaky = FlakyAnalyzer(failures=1)
        svc = service(tmp_path, analyzer=flaky, breaker_threshold=1,
                      breaker_reset_s=10.0, clock=clock)
        svc.admit(request("a"))  # one timeout trips the breaker
        b = svc.breakers["flaky"]
        clock.advance(10.0)
        assert b.allow()                        # probe in flight
        svc._listen(flaky, KeyboardInterrupt())  # probe died to a signal
        assert b.state == HALF_OPEN              # no verdict recorded
        assert b.consecutive_failures == 1       # unchanged
        assert b.allow()                         # slot freed
        svc.close()

    def test_shed_level_validation(self, tmp_path):
        with service(tmp_path) as svc:
            with pytest.raises(ServiceError):
                svc.set_shed_level(3)

    def test_auto_shed_follows_latency_ewma(self, tmp_path):
        with service(tmp_path, shed_latency_s=0.1) as svc:
            for _ in range(8):
                svc._note_latency(0.5)  # 5x SLO -> full shed
            assert svc.shed_level == 2
            for _ in range(50):
                svc._note_latency(0.001)
            assert svc.shed_level == 0

    def test_conservative_bound_is_sound_upper_bound(self, tmp_path):
        """closed-form rung never under-promises vs the primary."""
        with service(tmp_path) as svc:
            exact = svc.test(request("a"))
            svc.set_shed_level(2)
            loose = svc.test(request("a"))
            assert loose.degradation == DEGRADATION_CLOSED_FORM
            assert loose.bound >= exact.bound


class TestFaultScenarios:
    """Drive the service over resilience-transformed networks."""

    def test_server_degradation_inflates_bounds(self, tmp_path):
        healthy = AdmissionService(
            empty_net(), IntegratedAnalysis(), incremental=False,
            journal_dir=tmp_path / "h")
        faulted_net = ServerDegradation(2, 0.5).apply(empty_net())
        degraded = AdmissionService(
            faulted_net, IntegratedAnalysis(), incremental=False,
            journal_dir=tmp_path / "d")
        req = request("a")
        bound_healthy = healthy.admit(req).bound
        bound_degraded = degraded.admit(req).bound
        assert bound_degraded > bound_healthy
        healthy.close()
        degraded.close()

    def test_server_degradation_can_flip_admission(self, tmp_path):
        # deadline sits between the healthy and degraded bound
        healthy = AdmissionService(
            empty_net(), IntegratedAnalysis(), incremental=False,
            journal_dir=tmp_path / "h")
        probe = healthy.test(request("probe"))
        deadline = probe.bound * 1.05
        assert healthy.admit(request("a", deadline=deadline)).admitted
        healthy.close()
        faulted_net = ServerDegradation(1, 0.4).apply(empty_net())
        degraded = AdmissionService(
            faulted_net, IntegratedAnalysis(), incremental=False,
            journal_dir=tmp_path / "d")
        dec = degraded.admit(request("a", deadline=deadline))
        assert not dec.admitted
        degraded.close()

    def test_server_failure_rejects_severed_paths(self, tmp_path):
        faulted_net = ServerFailure(2).apply(empty_net())
        svc = AdmissionService(
            faulted_net, IntegratedAnalysis(), incremental=False,
            journal_dir=tmp_path / "j")
        dec = svc.admit(request("a", path=(1, 2)))
        assert not dec.admitted  # path traverses the failed server
        assert svc.admit(request("b", path=(1,))).admitted
        svc.close()


class TestGracefulShutdown:
    def test_sigterm_sets_flag_and_closes_on_exit(self, tmp_path):
        svc = service(tmp_path)
        previous = signal.getsignal(signal.SIGTERM)
        with svc.graceful_shutdown() as s:
            s.admit(request("a"))
            assert not s.shutdown_requested
            signal.raise_signal(signal.SIGTERM)
            assert s.shutdown_requested
        assert svc.closed
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_close_runs_even_when_body_raises(self, tmp_path):
        svc = service(tmp_path)
        with pytest.raises(RuntimeError):
            with svc.graceful_shutdown():
                raise RuntimeError("boom")
        assert svc.closed


class TestMetrics:
    def test_service_counters(self, tmp_path):
        metrics = MetricsRegistry()
        svc = service(tmp_path, ctx=AnalysisContext(metrics=metrics))
        svc.admit(request("a"))
        svc.admit(request("dup"))
        svc.admit(request("tight", deadline=1e-9))
        svc.release("a")
        svc.close()
        m = metrics.as_dict("service.")
        assert m["service.requests"] == 3
        assert m["service.admitted"] == 2
        assert m["service.rejected"] == 1
        assert m["service.released"] == 1
        assert m["service.shutdowns"] == 1
        assert m["service.snapshots"] >= 1


class TestJournalContents:
    def test_admit_record_carries_degradation_and_verify_analyzer(
            self, tmp_path):
        svc = service(tmp_path)
        svc.admit(request("a"))
        svc.set_shed_level(2)
        svc.admit(request("b", path=(2,)))
        path = tmp_path / "journal" / "journal.jsonl"
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        admits = [r for r in records if r["op"] == "admit"]
        assert admits[0]["degradation"] == DEGRADATION_NORMAL
        assert admits[0]["verify_analyzer"] == "integrated"
        assert admits[1]["degradation"] == DEGRADATION_CLOSED_FORM
        assert admits[1]["verify_analyzer"] == "conservative"
        svc.close()
