"""Service decision-latency percentiles (the loadgen satellite)."""

from repro.admission.requests import ConnectionRequest
from repro.context import AnalysisContext
from repro.context.metrics import MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.network.topology import Network, ServerSpec
from repro.service import AdmissionService


def make_service(tmp_path, metrics):
    empty = Network([ServerSpec(1), ServerSpec(2)], [])
    return AdmissionService(
        empty, IntegratedAnalysis(), journal_dir=tmp_path / "journal",
        ctx=AnalysisContext(metrics=metrics))


def request(i):
    return ConnectionRequest(f"c{i}", TokenBucket(1.0, 0.02, peak=1.0),
                             (1, 2), 30.0)


def test_every_decision_feeds_the_latency_reservoir(tmp_path):
    metrics = MetricsRegistry()
    service = make_service(tmp_path, metrics)
    for i in range(5):
        service.admit(request(i))
    stats = service.latency_quantiles()
    service.close()
    assert stats["count"] == 5.0
    assert 0.0 < stats["p50"] <= stats["p99"] <= stats["max"]
    # published as service.latency.* gauges for scrapers
    assert metrics.get("service.latency.p99") == stats["p99"]
    assert metrics.get("service.latency.count") == 5.0


def test_close_publishes_final_latency_gauges(tmp_path):
    metrics = MetricsRegistry()
    service = make_service(tmp_path, metrics)
    service.admit(request(0))
    assert metrics.get("service.latency.count") == 0.0  # not yet
    service.close()
    assert metrics.get("service.latency.count") == 1.0
    assert metrics.get("service.latency.max") > 0.0


def test_rejections_count_too(tmp_path):
    metrics = MetricsRegistry()
    service = make_service(tmp_path, metrics)
    admitted = rejected = 0
    i = 0
    while rejected == 0 and i < 300:
        decision = service.admit(request(i))
        admitted += decision.admitted
        rejected += not decision.admitted
        i += 1
    stats = service.latency_quantiles()
    service.close()
    assert rejected, "expected the tandem to saturate"
    assert stats["count"] == float(admitted + rejected)
