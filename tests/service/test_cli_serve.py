"""CLI tests for ``repro serve`` and ``repro recover``."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_serve_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--journal", "j"])
        assert args.count == 100 and args.snapshot_every == 64
        assert not args.resume

    def test_recover_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recover"])


class TestServeRecover:
    def test_serve_then_recover_round_trip(self, tmp_path, capsys):
        journal = str(tmp_path / "j")
        rc = main(["serve", "--journal", journal, "--count", "4",
                   "--hops", "2", "--deadline", "60", "--rho", "0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "admitted conn_0" in out and "[normal]" in out
        assert "served 4 admission(s)" in out

        rc = main(["recover", "--journal", journal, "--show-bounds"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 admitted connection(s)" in out
        assert "conn_3" in out
        assert "all bit-identical" in out

    def test_serve_resume_continues(self, tmp_path, capsys):
        journal = str(tmp_path / "j")
        assert main(["serve", "--journal", journal, "--count", "2",
                     "--hops", "2", "--deadline", "60",
                     "--rho", "0.02"]) == 0
        capsys.readouterr()
        rc = main(["serve", "--journal", journal, "--resume",
                   "--count", "2", "--hops", "2", "--deadline", "60",
                   "--rho", "0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recovered 2 connection(s)" in out
        assert "admitted conn_2" in out and "admitted conn_3" in out

    def test_serve_refuses_dirty_journal_without_resume(self, tmp_path,
                                                        capsys):
        journal = str(tmp_path / "j")
        assert main(["serve", "--journal", journal, "--count", "1",
                     "--hops", "2", "--deadline", "60",
                     "--rho", "0.02"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="journal state"):
            main(["serve", "--journal", journal, "--count", "1",
                  "--hops", "2", "--deadline", "60", "--rho", "0.02"])

    def test_serve_stops_at_first_rejection(self, tmp_path, capsys):
        journal = str(tmp_path / "j")
        # rho large enough that the second connection overloads
        rc = main(["serve", "--journal", journal, "--count", "10",
                   "--hops", "2", "--deadline", "60", "--rho", "0.6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rejected" in out and "1 rejection(s)" in out

    def test_recover_missing_journal_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="recover:"):
            main(["recover", "--journal", str(tmp_path / "nope")])

    def test_recover_no_verify_skips_reanalysis(self, tmp_path, capsys):
        journal = str(tmp_path / "j")
        assert main(["serve", "--journal", journal, "--count", "2",
                     "--hops", "2", "--deadline", "60",
                     "--rho", "0.02"]) == 0
        capsys.readouterr()
        assert main(["recover", "--journal", journal,
                     "--no-verify"]) == 0
        out = capsys.readouterr().out
        assert "re-verified" not in out


class TestParallelServe:
    def test_parser_parallel_defaults(self):
        args = build_parser().parse_args(["serve", "--journal", "j"])
        assert args.tandems == 1 and args.workers == 1
        assert args.batch == 16 and args.kernel is None

    def test_rejects_bad_worker_counts(self, tmp_path):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--journal", str(tmp_path / "j"),
                  "--workers", "0"])
        with pytest.raises(SystemExit, match="--tandems"):
            main(["serve", "--journal", str(tmp_path / "j"),
                  "--tandems", "0"])

    def test_multi_tandem_parallel_serve_round_trip(self, tmp_path,
                                                    capsys):
        journal = str(tmp_path / "j")
        rc = main(["serve", "--journal", journal, "--count", "8",
                   "--hops", "2", "--tandems", "2", "--workers", "2",
                   "--batch", "4", "--deadline", "60", "--rho", "0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "admitted conn_0" in out and "admitted conn_7" in out
        assert "served 8 admission(s)" in out

        rc = main(["recover", "--journal", journal])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 admitted connection(s)" in out
        assert "all bit-identical" in out

    def test_batch_prints_every_outcome(self, tmp_path, capsys):
        journal = str(tmp_path / "j")
        # rho 0.6: the second connection on each tandem overloads, so a
        # batch mixes admissions and rejections — every outcome must be
        # reported before the loop stops
        rc = main(["serve", "--journal", journal, "--count", "8",
                   "--hops", "2", "--tandems", "2", "--workers", "2",
                   "--batch", "4", "--deadline", "60", "--rho", "0.6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "admitted conn_0" in out and "admitted conn_1" in out
        assert "rejected conn_2" in out and "rejected conn_3" in out


class TestServeKernelPinning:
    def test_recover_reports_journal_kernel(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CURVE_KERNEL", "exact")
        journal = str(tmp_path / "j")
        assert main(["serve", "--journal", journal, "--count", "2",
                     "--hops", "2", "--deadline", "60", "--rho", "0.02",
                     "--kernel", "grid"]) == 0
        capsys.readouterr()
        assert main(["recover", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "kernel grid" in out
        assert "all bit-identical" in out

    def test_recover_wrong_kernel_refused(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CURVE_KERNEL", "exact")
        journal = str(tmp_path / "j")
        assert main(["serve", "--journal", journal, "--count", "2",
                     "--hops", "2", "--deadline", "60", "--rho", "0.02",
                     "--kernel", "grid"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="recorded under curve "
                                             "kernel 'grid'"):
            main(["recover", "--journal", journal, "--kernel", "exact"])
        # the matching expectation passes
        assert main(["recover", "--journal", journal,
                     "--kernel", "grid"]) == 0

    def test_serve_resume_wrong_kernel_refused(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CURVE_KERNEL", "exact")
        journal = str(tmp_path / "j")
        assert main(["serve", "--journal", journal, "--count", "2",
                     "--hops", "2", "--deadline", "60", "--rho", "0.02",
                     "--kernel", "grid"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="serve:.*kernel"):
            main(["serve", "--journal", journal, "--resume",
                  "--count", "1", "--hops", "2", "--deadline", "60",
                  "--rho", "0.02", "--kernel", "exact"])
