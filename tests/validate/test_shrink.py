"""Unit tests for greedy network shrinking."""

import pytest

from repro.context import AnalysisContext, Deadline, MetricsRegistry
from repro.errors import AnalysisTimeoutError
from repro.network.generators import random_feedforward
from repro.validate import shrink_network


def _net():
    return random_feedforward(1, n_servers=4, n_flows=5,
                              max_utilization=0.7)


class TestShrinkNetwork:
    def test_shrinks_to_protected_flow(self):
        net = _net()
        out = shrink_network(net, lambda n: "f0" in n.flows,
                             protect=["f0"])
        assert set(out.flows) == {"f0"}
        # only f0's servers survive
        assert set(out.servers) == set(out.flow("f0").path)

    def test_burst_halved_to_one_minimality(self):
        net = random_feedforward(2, n_servers=2, n_flows=1)
        sigma0 = net.flow("f0").bucket.sigma
        out = shrink_network(
            net, lambda n: n.flow("f0").bucket.sigma > sigma0 / 10,
            protect=["f0"])
        sigma = out.flow("f0").bucket.sigma
        # halving once more would break the predicate: 1-minimal
        assert sigma0 / 10 < sigma <= sigma0 / 5

    def test_vanished_violation_returns_input(self):
        net = _net()
        assert shrink_network(net, lambda n: False) is net

    def test_raising_predicate_counts_as_gone(self):
        from repro.network.serialization import network_to_dict

        net = _net()
        original = network_to_dict(net)

        def fragile(n):
            if network_to_dict(n) != original:
                raise RuntimeError("network changed")
            return True

        assert shrink_network(net, fragile) is net

    def test_max_steps_bounds_predicate_calls(self):
        net = _net()
        calls = []

        def count(n):
            calls.append(1)
            return True

        shrink_network(net, count, max_steps=3)
        assert len(calls) == 3

    def test_steps_counted_and_deadline_respected(self):
        ctx = AnalysisContext(metrics=MetricsRegistry())
        shrink_network(_net(), lambda n: "f0" in n.flows,
                       protect=["f0"], ctx=ctx)
        assert ctx.metrics.get("validate.shrink_steps") > 0

        expired = AnalysisContext(
            deadline=Deadline(1e-9, "shrink test"))
        with pytest.raises(AnalysisTimeoutError):
            shrink_network(_net(), lambda n: True, ctx=expired)
