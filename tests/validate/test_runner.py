"""Unit tests for the fuzz driver."""

import pytest

from repro.context import AnalysisContext, Deadline, MetricsRegistry
from repro.network.serialization import network_to_dict
from repro.validate import (
    load_case,
    replay,
    run_validation,
    topology_for_seed,
)


class _Zero:
    """Analyzer stub claiming a zero delay bound — always unsound."""

    def run(self, net, ctx):
        return self

    def delay_of(self, name: str) -> float:
        return 0.0


class TestTopologyForSeed:
    def test_deterministic(self):
        a = topology_for_seed(12)
        b = topology_for_seed(12)
        assert network_to_dict(a) == network_to_dict(b)

    def test_population_varies(self):
        shapes = {(len(topology_for_seed(s).servers),
                   len(topology_for_seed(s).flows))
                  for s in range(12)}
        assert len(shapes) > 3

    def test_quick_caps_size(self):
        for seed in range(12):
            net = topology_for_seed(seed, quick=True)
            assert len(net.servers) <= 3 and len(net.flows) <= 4

    def test_generated_networks_are_stable(self):
        for seed in range(8):
            topology_for_seed(seed).check_stability()


class TestRunValidation:
    def test_clean_run(self):
        report = run_validation(2, quick=True)
        assert report.ok and not report.timed_out
        assert report.seeds == (0, 1)
        assert report.counters["validate.soundness_checks"] > 0
        assert report.counters["validate.kernel_checks"] > 0
        assert "all oracles held" in report.render()

    def test_explicit_seed_list(self):
        report = run_validation([5, 9], quick=True)
        assert report.seeds == (5, 9)

    def test_violations_become_replayable_cases(self, tmp_path):
        analyzers = {"integrated": _Zero(), "decomposed": _Zero()}
        report = run_validation(1, quick=True, analyzers=analyzers,
                                out_dir=tmp_path, shrink=False)
        assert not report.ok
        assert report.cases
        assert all(c.oracle == "soundness" for c in report.cases)
        files = sorted(tmp_path.glob("case_*.json"))
        assert len(files) == len(report.cases)
        case = load_case(files[0])
        assert case.network is not None
        # the real analyzers hold on the recorded topology, so the
        # replay (which uses them) comes back clean
        assert replay(case) == []
        assert "VIOLATION" in report.render()

    def test_shrunk_case_is_smaller_or_equal(self, tmp_path):
        analyzers = {"integrated": _Zero(), "decomposed": _Zero()}
        full = run_validation(1, quick=True, analyzers=analyzers,
                              shrink=False)
        # shrinking uses the *real* analyzers in the predicate, under
        # which the violation vanishes immediately -> network kept
        shrunk = run_validation(1, quick=True, analyzers=analyzers,
                                shrink=True)
        n_full = len(full.cases[0].network["flows"])
        n_shrunk = len(shrunk.cases[0].network["flows"])
        assert n_shrunk <= n_full

    def test_deadline_yields_partial_report(self):
        ctx = AnalysisContext(
            deadline=Deadline(1e-9, "validation test"),
            metrics=MetricsRegistry())
        report = run_validation(3, quick=True, ctx=ctx)
        assert report.timed_out and not report.ok
        assert report.seeds == ()
        assert "TIMED OUT" in report.render()

    def test_counters_land_on_caller_registry(self):
        ctx = AnalysisContext(metrics=MetricsRegistry())
        run_validation(1, quick=True, ctx=ctx)
        assert ctx.metrics.get("validate.seeds") == 1
        assert ctx.metrics.get("validate.ordering_checks") > 0


class TestAcceptance:
    def test_ten_full_seeds_hold(self):
        # the full 50-seed acceptance run lives in CI as
        # ``repro validate``; ten unshrunk full-size seeds keep the
        # same oracles honest within the unit-test budget
        report = run_validation(10)
        assert report.ok, report.render()
