"""Unit tests for JSON repro cases and their replay."""

import pytest

from repro.network.generators import random_feedforward
from repro.network.serialization import network_to_dict
from repro.validate import ReproCase, load_case, replay, save_case
from repro.validate.repro_case import case_from_dict, case_to_dict


def _network_case(oracle="ordering", seed=5):
    net = random_feedforward(seed, n_servers=3, n_flows=3)
    return ReproCase(
        oracle=oracle, seed=seed,
        violation={"oracle": oracle, "flow": "f0", "detail": "x",
                   "observed": 2.0, "allowed": 1.0, "margin": 1.0},
        params={}, network=network_to_dict(net))


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        case = _network_case()
        path = save_case(case, tmp_path / "case.json")
        loaded = load_case(path)
        assert loaded == case
        assert loaded.network_obj().flows.keys() == \
            case.network_obj().flows.keys()

    def test_dict_round_trip_stamps_version(self):
        doc = case_to_dict(_network_case())
        assert doc["version"] == 1
        assert case_from_dict(doc) == _network_case()

    def test_unknown_version_rejected(self):
        doc = case_to_dict(_network_case())
        doc["version"] = 99
        with pytest.raises(ValueError, match="version"):
            case_from_dict(doc)

    def test_malformed_doc_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            case_from_dict({"version": 1, "oracle": "kernel"})

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_case(bad)

    def test_kernel_case_has_no_network(self):
        case = ReproCase(oracle="kernel", seed=3,
                         violation={}, params={"trials": 2})
        assert case.network_obj() is None


class TestReplay:
    def test_ordering_replay_on_healthy_network_is_clean(self):
        assert replay(_network_case("ordering")) == []

    def test_monotonicity_replay(self):
        case = _network_case("monotonicity")
        assert replay(case) == []

    def test_soundness_replay_uses_params(self):
        case = _network_case("soundness")
        case = ReproCase(oracle="soundness", seed=case.seed,
                         violation=case.violation,
                         params={"target": "f0", "horizon": 20.0,
                                 "packet_size": 0.05},
                         network=case.network)
        assert replay(case) == []

    def test_kernel_replay_is_deterministic(self):
        case = ReproCase(oracle="kernel", seed=11, violation={},
                         params={"trials": 2, "resolution": 512})
        assert replay(case) == replay(case) == []

    def test_network_oracle_without_network_rejected(self):
        case = ReproCase(oracle="ordering", seed=0, violation={})
        with pytest.raises(ValueError, match="no network"):
            replay(case)

    def test_unknown_oracle_rejected(self):
        case = _network_case("quantum")
        with pytest.raises(ValueError, match="unknown oracle"):
            replay(case)
