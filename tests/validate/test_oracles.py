"""Unit tests for the three differential oracles."""

import pytest

from repro.context import AnalysisContext, MetricsRegistry
from repro.network.generators import random_feedforward
from repro.network.tandem import build_tandem
from repro.validate import (
    Violation,
    check_kernels,
    check_monotonicity,
    check_ordering,
    check_soundness,
    default_analyzers,
    packetization_slack,
)


class _Fixed:
    """Analyzer stub: the same bound for every flow of any network."""

    def __init__(self, value: float):
        self.value = value

    def run(self, net, ctx):
        return self

    def delay_of(self, name: str) -> float:
        return self.value


class _BurstInverse:
    """Analyzer stub whose bound *shrinks* as bursts grow (anti-
    monotone on purpose)."""

    def run(self, net, ctx):
        total = sum(f.bucket.sigma for f in net.iter_flows())
        stub = _Fixed(10.0 / total)
        return stub


class TestViolation:
    def test_margin_and_dict(self):
        v = Violation("soundness", "f0", "detail", 3.0, 2.5)
        assert v.margin == pytest.approx(0.5)
        d = v.as_dict()
        assert d["oracle"] == "soundness" and d["flow"] == "f0"
        assert d["margin"] == pytest.approx(0.5)


class TestPacketizationSlack:
    def test_one_packet_time_per_hop(self):
        net = build_tandem(3, 0.5)
        flow = next(net.iter_flows())
        slack = packetization_slack(net, flow, 0.05)
        # tandem servers have unit capacity
        assert slack == pytest.approx(0.05 * flow.n_hops)


class TestSoundness:
    def test_real_analyzers_hold_on_tandem(self):
        net = build_tandem(2, 0.6)
        assert check_soundness(net, horizon=40.0) == []

    def test_detects_unsound_bound(self):
        net = build_tandem(2, 0.6)
        violations = check_soundness(
            net, horizon=40.0, analyzers={"tiny": _Fixed(0.0)})
        assert violations
        assert all(v.oracle == "soundness" and v.margin > 0
                   for v in violations)
        assert "tiny bound" in violations[0].detail

    def test_counts_checks_on_context(self):
        ctx = AnalysisContext(metrics=MetricsRegistry())
        net = build_tandem(2, 0.6)
        check_soundness(net, horizon=40.0, ctx=ctx)
        assert ctx.metrics.get("validate.soundness_checks") > 0


class TestOrdering:
    def test_holds_on_random_topologies(self):
        for seed in range(4):
            net = random_feedforward(seed, n_servers=3, n_flows=4)
            assert check_ordering(net) == []

    def test_detects_inverted_pair(self):
        net = build_tandem(2, 0.6)
        violations = check_ordering(net, analyzers={
            "integrated": _Fixed(2.0), "decomposed": _Fixed(1.0)})
        assert len(violations) == len(net.flows)
        assert violations[0].oracle == "ordering"
        assert violations[0].observed == pytest.approx(2.0)


class TestMonotonicity:
    def test_holds_for_real_analyzers(self):
        net = random_feedforward(3, n_servers=3, n_flows=4,
                                 max_utilization=0.6)
        assert check_monotonicity(net) == []

    def test_detects_anti_monotone_bound(self):
        net = build_tandem(2, 0.5)
        violations = check_monotonicity(
            net, analyzers={"anti": _BurstInverse()})
        assert violations
        assert violations[0].oracle == "monotonicity"
        assert "dropped" in violations[0].detail
        assert violations[0].margin > 0

    def test_rate_inflation_skipped_near_saturation(self):
        # U=0.9: rates x1.25 would saturate; only burst inflation runs
        net = build_tandem(2, 0.9)
        assert check_monotonicity(net, rate_factor=1.25) == []


class TestKernels:
    def test_exact_matches_sampled_within_tolerance(self):
        for seed in (0, 1, 2):
            assert check_kernels(seed, trials=4) == []

    def test_counts_checks(self):
        ctx = AnalysisContext(metrics=MetricsRegistry())
        check_kernels(0, trials=2, ctx=ctx)
        # 4 comparisons per trial
        assert ctx.metrics.get("validate.kernel_checks") == 8

    def test_deterministic_per_seed(self):
        a = check_kernels(7, trials=3)
        b = check_kernels(7, trials=3)
        assert a == b


class TestDefaultAnalyzers:
    def test_pair(self):
        analyzers = default_analyzers()
        assert set(analyzers) == {"integrated", "decomposed"}
