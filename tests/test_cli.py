"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.hops == 4 and args.load == 0.8

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--figure", "FIG9"])


class TestAnalyze:
    def test_all_analyzers(self, capsys):
        assert main(["analyze", "--hops", "2", "--load", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "integrated" in out and "decomposed" in out
        assert "conn0" in out

    def test_single_analyzer_all_flows(self, capsys):
        rc = main(["analyze", "--hops", "2", "--load", "0.5",
                   "--analyzer", "integrated", "--all-flows"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "short_1" in out and "long_2" in out

    def test_unknown_analyzer(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--analyzer", "quantum"])


class TestFigures:
    def test_single_quick_figure(self, capsys):
        assert main(["figures", "--quick", "--figure", "FIG5"]) == 0
        out = capsys.readouterr().out
        assert "FIG5" in out and "relative improvement" in out
        assert "FIG4" not in out


class TestSimulate:
    def test_simulate_reports_soundness(self, capsys):
        rc = main(["simulate", "--hops", "2", "--load", "0.6",
                   "--horizon", "30", "--packet", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "soundness: OK" in out


class TestAdmit:
    def test_admit_counts(self, capsys):
        rc = main(["admit", "--hops", "2", "--deadline", "20",
                   "--rho", "0.05", "--analyzer", "decomposed",
                   "--max", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "admitted" in out


class TestExport:
    def test_writes_files(self, tmp_path, capsys):
        rc = main(["export", "--quick", "--out", str(tmp_path / "res")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG4.csv" in out and "FIG6.json" in out
        assert (tmp_path / "res" / "FIG5.csv").exists()


class TestChart:
    def test_renders_chart(self, capsys):
        rc = main(["chart", "--figure", "FIG5", "--quick", "--log"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "FIG5" in out and "U=0.20" in out


class TestResilience:
    def test_default_drill_survives_mild_slack(self, capsys):
        rc = main(["resilience", "--hops", "2", "--load", "0.5",
                   "--slack", "3.0"])
        out = capsys.readouterr().out
        assert "survivability" in out
        assert rc == 0 and "SURVIVES" in out

    def test_failure_scenario_degrades(self, capsys):
        rc = main(["resilience", "--hops", "2", "--load", "0.5",
                   "--fail", "1"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "severed" in out and "server 1 failed" in out

    def test_explicit_scenarios_parsed(self, capsys):
        rc = main(["resilience", "--hops", "2", "--load", "0.5",
                   "--slack", "5.0", "--degrade", "2=0.95",
                   "--inflate", "conn0=1.1", "--inflate", "all=1.05"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "server 2 at 95% capacity" in out
        assert "burst x1.1 on conn0" in out
        assert "burst x1.05 on all sources" in out

    def test_bad_degrade_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["resilience", "--degrade", "2"])

    def test_bad_factor_rejected(self):
        with pytest.raises(SystemExit):
            main(["resilience", "--degrade", "2=fast"])


class TestSweep:
    def test_serial_sweep_table(self, capsys):
        rc = main(["sweep", "--serial", "--analyzers", "decomposed",
                   "--hops", "2", "--loads", "0.3,0.6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2/2 points ok" in out

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.jsonl")
        assert main(["sweep", "--serial", "--analyzers", "decomposed",
                     "--hops", "2", "--loads", "0.4",
                     "--checkpoint", ck]) == 0
        assert main(["sweep", "--serial", "--analyzers", "decomposed",
                     "--hops", "2", "--loads", "0.4",
                     "--checkpoint", ck, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "1/1 points ok" in out

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--resume"])


class TestValidate:
    def test_quick_run_is_clean(self, capsys):
        rc = main(["validate", "--seeds", "2", "--quick"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validated 2 seed(s): 0 violation(s)" in out
        assert "all oracles held" in out

    def test_budget_expiry_reports_partial(self, capsys):
        rc = main(["validate", "--seeds", "5", "--quick",
                   "--budget", "1e-9"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "TIMED OUT" in out

    def test_trace_written(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        rc = main(["validate", "--seeds", "1", "--quick",
                   "--trace", str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["meta"]["command"] == "validate"
        assert doc["counters"]["validate.seeds"] == 1

    def test_replay_round_trip(self, tmp_path, capsys):
        from repro.network.generators import random_feedforward
        from repro.network.serialization import network_to_dict
        from repro.validate import ReproCase, save_case

        case = ReproCase(
            oracle="ordering", seed=4,
            violation={"flow": "f0", "detail": "x",
                       "observed": 2.0, "allowed": 1.0},
            network=network_to_dict(
                random_feedforward(4, n_servers=2, n_flows=2)))
        path = save_case(case, tmp_path / "case.json")
        rc = main(["validate", "--replay", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no longer reproduces" in out
