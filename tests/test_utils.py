"""Unit tests for shared utilities and the exception hierarchy."""

import math

import pytest

from repro import errors
from repro.utils.tolerance import EPS, close, geq, leq
from repro.utils.validation import (
    check_finite,
    check_nonnegative,
    check_positive,
    check_type,
)


class TestTolerance:
    def test_close_absolute(self):
        assert close(1.0, 1.0 + EPS / 2)
        assert not close(1.0, 1.1)

    def test_close_relative_scales(self):
        assert close(1e9, 1e9 * (1 + 1e-12))

    def test_leq_geq(self):
        assert leq(1.0, 1.0)
        assert leq(1.0, 1.0 + 1e-12)
        assert geq(2.0, 1.0)
        assert not leq(1.1, 1.0)


class TestValidation:
    def test_check_finite(self):
        assert check_finite("x", 3) == 3.0
        with pytest.raises(ValueError, match="x"):
            check_finite("x", math.nan)
        with pytest.raises(ValueError):
            check_finite("x", math.inf)

    def test_check_nonnegative(self):
        assert check_nonnegative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_nonnegative("x", -1e-9)

    def test_check_positive(self):
        assert check_positive("x", 1e-9) == 1e-9
        with pytest.raises(ValueError):
            check_positive("x", 0.0)

    def test_check_type(self):
        assert check_type("x", 1, int) == 1
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "s", int)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.CurveError, errors.InstabilityError, errors.TopologyError,
        errors.FlowError, errors.AnalysisError, errors.SimulationError,
        errors.AdmissionError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_instability_carries_rates(self):
        e = errors.InstabilityError("overload", rate=1.5, capacity=1.0)
        assert e.rate == 1.5 and e.capacity == 1.0

    def test_instability_defaults(self):
        e = errors.InstabilityError("overload")
        assert e.rate is None and e.capacity is None

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CurveError("bad curve")
