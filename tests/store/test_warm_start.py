"""Warm-start integration: every store-served bound is bit-identical
to the cold analysis, across engines, pools, sweeps and services.

These are the differential fuzz tests the store's contract rests on:
a store hit replays the exact bytes the cold computation would have
produced — down to ``float.hex`` — or it does not count as a hit.
"""

import pytest

from repro.admission.requests import ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.context import AnalysisContext, MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.engine import (
    IncrementalEngine,
    ParallelAnalysis,
    reports_identical,
)
from repro.network.flow import Flow
from repro.network.generators import random_feedforward
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec
from repro.store import AnalysisStore


def bounds_hex(report, net):
    return {f.name: report.delay_of(f.name).hex()
            for f in net.iter_flows()}


class TestEngineWarmStart:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_warm_engine_is_bit_identical_to_cold(self, tmp_path, seed):
        net = random_feedforward(seed, n_servers=6, n_flows=10,
                                 max_utilization=0.8)
        cold = DecomposedAnalysis().analyze(net)

        # process 1: cold engine populates the store
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            first = eng.query()

        # process 2 (simulated restart): fresh engine, warm store
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            warm = eng.query()
            assert eng.stats.store_hits > 0
            assert eng.stats.misses == 0  # nothing recomputed
        assert reports_identical(first, cold)
        assert reports_identical(warm, cold)
        assert bounds_hex(warm, net) == bounds_hex(cold, net)

    def test_integrated_blocks_warm_start(self, tmp_path):
        net = build_tandem(4, 0.7, 1.0)
        cold = IntegratedAnalysis().analyze(net)
        with AnalysisStore(tmp_path / "s") as store:
            IncrementalEngine(IntegratedAnalysis(), net,
                              store=store).query()
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(IntegratedAnalysis(), net,
                                    store=store)
            warm = eng.query()
            assert eng.stats.store_hits > 0
        assert bounds_hex(warm, net) == bounds_hex(cold, net)

    def test_admissions_reuse_the_store_across_restarts(self, tmp_path):
        net = build_tandem(4, 0.5, 1.0)
        extra = Flow("extra", TokenBucket(1.0, 0.2), (1, 2, 3),
                     deadline=60.0)
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            eng.query()
            first = eng.admit(extra)
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            eng.query()
            again = eng.admit(extra)
            assert eng.stats.misses == 0
        assert reports_identical(first, again)

    def test_read_only_store_never_writes(self, tmp_path):
        net = build_tandem(3, 0.5, 1.0)
        AnalysisStore(tmp_path / "s").close()
        with AnalysisStore(tmp_path / "s", read_only=True) as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            warm = eng.query()
            assert store.stats.writes == 0
        assert reports_identical(warm, DecomposedAnalysis().analyze(net))

    def test_corrupt_store_falls_back_to_recompute(self, tmp_path):
        net = build_tandem(4, 0.6, 1.0)
        cold = DecomposedAnalysis().analyze(net)
        with AnalysisStore(tmp_path / "s") as store:
            IncrementalEngine(DecomposedAnalysis(), net,
                              store=store).query()
        # flip a byte in every segment payload region
        for seg in (tmp_path / "s").glob("seg-*.dat"):
            blob = bytearray(seg.read_bytes())
            for i in range(len(blob) // 2, len(blob), 97):
                blob[i] ^= 0xFF
            seg.write_bytes(bytes(blob))
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            warm = eng.query()  # never crashes, never a wrong bound
        assert bounds_hex(warm, net) == bounds_hex(cold, net)


class TestKernelTagging:
    def test_exact_and_grid_never_alias(self, tmp_path):
        net = build_tandem(3, 0.7, 1.0)
        exact_ctx = AnalysisContext(kernel="exact")
        grid_ctx = AnalysisContext(kernel="grid")
        cold_exact = DecomposedAnalysis().analyze(net, ctx=exact_ctx)
        cold_grid = DecomposedAnalysis().analyze(net, ctx=grid_ctx)
        # sanity: the kernels genuinely disagree on this topology, so
        # aliasing would be observable
        assert (cold_exact.delay_of(CONNECTION0)
                != cold_grid.delay_of(CONNECTION0))

        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            eng.query(ctx=AnalysisContext(kernel="exact"))
        with AnalysisStore(tmp_path / "s") as store:
            eng = IncrementalEngine(DecomposedAnalysis(), net,
                                    store=store)
            warm_grid = eng.query(ctx=AnalysisContext(kernel="grid"))
            assert eng.stats.store_hits == 0  # exact entries don't alias
            warm_exact = eng.query(ctx=AnalysisContext(kernel="exact"))
        assert (warm_grid.delay_of(CONNECTION0).hex()
                == cold_grid.delay_of(CONNECTION0).hex())
        assert (warm_exact.delay_of(CONNECTION0).hex()
                == cold_exact.delay_of(CONNECTION0).hex())


class TestParallelAnalysisStore:
    def disjoint_net(self, tandems=3, hops=3):
        servers = [ServerSpec(t * hops + k) for t in range(tandems)
                   for k in range(1, hops + 1)]
        flows = [Flow(f"f{t}", TokenBucket(1.0, 0.3),
                      tuple(range(t * hops + 1, t * hops + hops + 1)),
                      deadline=60.0)
                 for t in range(tandems)]
        return Network(servers, flows)

    def test_pool_workers_populate_the_store(self, tmp_path):
        net = self.disjoint_net()
        cold = DecomposedAnalysis().analyze(net)
        ctx = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            pa = ParallelAnalysis(DecomposedAnalysis(), workers=2,
                                  store=store)
            first = pa.analyze(net, ctx=ctx)
            assert ctx.metrics.get("store.writes") > 0
        assert reports_identical(first, cold)

        ctx2 = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            pa = ParallelAnalysis(DecomposedAnalysis(), workers=2,
                                  store=store)
            warm = pa.analyze(net, ctx=ctx2)
            assert ctx2.metrics.get("store.hits") > 0
            assert ctx2.metrics.get("store.writes") == 0
        assert bounds_hex(warm, net) == bounds_hex(cold, net)


class TestServiceWarmBoot:
    def request(self, k, hops=4, rho=0.02, deadline=30.0):
        return ConnectionRequest(
            f"conn_{k}", TokenBucket(1.0, rho, peak=1.0),
            tuple(range(1, hops + 1)), deadline)

    def empty_net(self, hops=4):
        return Network([ServerSpec(k) for k in range(1, hops + 1)], [])

    def test_recovery_consults_the_store(self, tmp_path):
        from repro.service import AdmissionService, recover_service

        jdir = tmp_path / "journal"
        with AnalysisStore(tmp_path / "s") as store:
            service = AdmissionService(
                self.empty_net(), IntegratedAnalysis(),
                journal_dir=jdir, store=store)
            outcomes = [service.admit(self.request(k)) for k in range(4)]
            assert all(o.admitted for o in outcomes)
            service.close()

        # crash-recover with the warm store: bounds must re-verify
        # bit-identically (float.hex inside verify_recovery)
        ctx = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            recovered = recover_service(jdir, store=store, ctx=ctx)
            assert sorted(recovered.admitted) == [
                f"conn_{k}" for k in range(4)]
            recovered.close()
            assert ctx.metrics.get("store.hits") > 0

    def test_recovery_with_cold_store_still_verifies(self, tmp_path):
        from repro.service import AdmissionService, recover_service

        jdir = tmp_path / "journal"
        service = AdmissionService(self.empty_net(),
                                   IntegratedAnalysis(),
                                   journal_dir=jdir)
        for k in range(3):
            service.admit(self.request(k))
        service.close()
        with AnalysisStore(tmp_path / "cold") as store:
            recovered = recover_service(jdir, store=store)
            assert len(recovered.admitted) == 3
            recovered.close()

    def test_batch_admission_ships_records_to_parent(self, tmp_path):
        from repro.service import AdmissionService

        hops, tandems = 3, 2
        servers = [ServerSpec(t * hops + k) for t in range(tandems)
                   for k in range(1, hops + 1)]

        def request(k):
            base = (k % tandems) * hops
            return ConnectionRequest(
                f"conn_{k}", TokenBucket(1.0, 0.02, peak=1.0),
                tuple(range(base + 1, base + hops + 1)), 30.0)

        ctx = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            service = AdmissionService(
                Network(servers, []), DecomposedAnalysis(),
                journal_dir=tmp_path / "j1", store=store, ctx=ctx)
            serial_outcomes = [
                o.admitted for o in (service.admit(request(k))
                                     for k in range(4))]
            service.close()
            assert len(store) > 0

        ctx2 = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            service = AdmissionService(
                Network(servers, []), DecomposedAnalysis(),
                journal_dir=tmp_path / "j2", store=store, ctx=ctx2)
            outcomes = service.admit_batch([request(k) for k in range(4)],
                                           workers=2)
            service.close()
        assert [o.admitted for o in outcomes] == serial_outcomes


class TestSweepMemoization:
    GRID = dict(hops=[2, 3], loads=[0.3, 0.6], sigma=1.0)

    def run(self, store, parallel=False, ctx=None):
        from repro.eval.parallel import evaluate_grid

        return evaluate_grid(
            ["integrated", "decomposed"], self.GRID["hops"],
            self.GRID["loads"], sigma=self.GRID["sigma"],
            parallel=parallel, store=store,
            ctx=ctx if ctx is not None else AnalysisContext(
                metrics=MetricsRegistry()))

    def test_serial_sweep_memoizes_across_runs(self, tmp_path):
        cold = self.run(None)
        with AnalysisStore(tmp_path / "s") as store:
            first = self.run(store)
        ctx = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            warm = self.run(store, ctx=ctx)
            assert ctx.metrics.get("store.writes") == 0
        for c, f, w in zip(cold, first, warm):
            assert (c.analyzer, c.n_hops, c.load) == \
                   (w.analyzer, w.n_hops, w.load)
            assert c.delay.hex() == f.delay.hex() == w.delay.hex()

    def test_parallel_sweep_reuses_serial_entries(self, tmp_path):
        cold = self.run(None)
        with AnalysisStore(tmp_path / "s") as store:
            self.run(store)  # serial warm-up
        ctx = AnalysisContext(metrics=MetricsRegistry())
        with AnalysisStore(tmp_path / "s") as store:
            warm = self.run(store, parallel=True, ctx=ctx)
            assert ctx.metrics.get("store.writes") == 0
        for c, w in zip(cold, warm):
            assert c.delay.hex() == w.delay.hex()
