"""Corruption-handling tests: every failure reads as a miss, never a
wrong value, and a recompute-and-put repairs the store in place."""

import json
import os
import pickle
import struct

from repro.store import AnalysisStore
from repro.store.format import (
    FRAME_HEADER,
    KEY_BYTES,
    checksum,
    pack_frame,
    segment_header,
)


def key(n: int) -> bytes:
    return n.to_bytes(KEY_BYTES, "big")


def seeded_store(path, n=6):
    with AnalysisStore(path) as store:
        for i in range(n):
            store.put(key(i), ("payload", i), float(i))
    return path


def segment_files(path):
    return sorted(p for p in path.glob("seg-*.dat"))


class TestTornTail:
    def test_truncated_tail_drops_only_the_torn_entry(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        seg = segment_files(path)[0]
        seg.write_bytes(seg.read_bytes()[:-7])  # torn mid-frame
        with AnalysisStore(path) as store:
            assert len(store) == 5  # the torn last entry is gone
            for i in range(5):
                entry = store.get(key(i))
                assert entry is not None and entry.value == ("payload", i)
            assert store.get(key(5)) is None

    def test_writable_open_truncates_the_torn_tail(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        seg = segment_files(path)[0]
        clean = seg.stat().st_size
        seg.write_bytes(seg.read_bytes() + b"\x00" * 11)  # torn append
        with AnalysisStore(path):
            pass
        assert seg.stat().st_size == clean

    def test_read_only_open_tolerates_the_torn_tail(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        seg = segment_files(path)[0]
        torn = seg.read_bytes() + b"\x00" * 11
        seg.write_bytes(torn)
        os.unlink(path / "index.json")  # force a scan
        with AnalysisStore(path, read_only=True) as store:
            assert len(store) == 6
        assert seg.stat().st_size == len(torn)  # untouched

    def test_recompute_repairs_after_truncation(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        seg = segment_files(path)[0]
        seg.write_bytes(seg.read_bytes()[:-7])
        with AnalysisStore(path) as store:
            assert store.get(key(5)) is None  # miss → caller recomputes
            assert store.put(key(5), ("payload", 5), 5.0)
        with AnalysisStore(path) as store:
            assert store.get(key(5)).value == ("payload", 5)


class TestBitFlip:
    def flip(self, path, back_offset=10):
        seg = segment_files(path)[0]
        blob = bytearray(seg.read_bytes())
        blob[-back_offset] ^= 0x40
        seg.write_bytes(bytes(blob))

    def test_flipped_payload_is_a_miss_not_a_wrong_value(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        self.flip(path)
        with AnalysisStore(path) as store:
            # the damaged entry (the last one) must read as None —
            # never as a value that differs from what was stored
            assert store.get(key(5)) is None
            assert store.stats.corrupt == 1
            for i in range(5):
                assert store.get(key(i)).value == ("payload", i)

    def test_verify_reports_the_flipped_entry(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        self.flip(path)
        with AnalysisStore(path) as store:
            report = store.verify()
            assert not report.ok
            assert len(report.corrupt) == 1
            assert "CORRUPT" in report.render()

    def test_reput_repairs_the_flipped_entry(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        self.flip(path)
        with AnalysisStore(path) as store:
            assert store.get(key(5)) is None
            assert store.put(key(5), ("payload", 5), 5.0)
            assert store.get(key(5)).value == ("payload", 5)
            assert store.verify().ok

    def test_unpicklable_payload_with_valid_crc_is_corrupt(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        junk = b"\x80\x05this is not a pickle"
        (path / "seg-00000001.dat").write_bytes(
            segment_header() + pack_frame(key(1), junk))
        with AnalysisStore(path) as store:
            assert len(store) == 1  # frame header scanned fine
            assert store.get(key(1)) is None  # unpickle fails → miss
            assert store.stats.corrupt == 1


class TestVersionSkew:
    def test_foreign_format_segment_reads_as_empty(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        header = json.loads(
            segment_header()[:-1].decode("utf-8"))
        header["format"] = 99
        blob = (json.dumps(header).encode("utf-8") + b"\n"
                + pack_frame(key(1), pickle.dumps(("future", 1.0))))
        (path / "seg-00000001.dat").write_bytes(blob)
        with AnalysisStore(path) as store:
            assert len(store) == 0
            assert store.get(key(1)) is None  # recompute, not garbage

    def test_foreign_schema_segment_reads_as_empty(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        header = json.loads(segment_header()[:-1].decode("utf-8"))
        header["schema"] = "other-schema-v9"
        blob = (json.dumps(header).encode("utf-8") + b"\n"
                + pack_frame(key(1), pickle.dumps(("other", 1.0))))
        (path / "seg-00000001.dat").write_bytes(blob)
        with AnalysisStore(path) as store:
            assert len(store) == 0

    def test_headerless_segment_reads_as_empty(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        (path / "seg-00000001.dat").write_bytes(b"garbage with no header")
        with AnalysisStore(path) as store:
            assert len(store) == 0
            store.put(key(1), "fresh", 0.0)
        with AnalysisStore(path) as store:
            assert store.get(key(1)).value == "fresh"

    def test_foreign_index_version_forces_rescan(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        index = json.loads((path / "index.json").read_text())
        index["format"] = 99
        (path / "index.json").write_text(json.dumps(index))
        with AnalysisStore(path) as store:
            assert len(store) == 6  # rebuilt from the segments
            for i in range(6):
                assert store.get(key(i)).value == ("payload", i)

    def test_index_naming_missing_segment_forces_rescan(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        index = json.loads((path / "index.json").read_text())
        index["segments"]["seg-99999999.dat"] = 123
        (path / "index.json").write_text(json.dumps(index))
        with AnalysisStore(path) as store:
            assert len(store) == 6

    def test_garbled_index_json_forces_rescan(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        (path / "index.json").write_text("{not json")
        with AnalysisStore(path) as store:
            assert len(store) == 6

    def test_compaction_drops_foreign_segments(self, tmp_path):
        path = seeded_store(tmp_path / "s")
        header = json.loads(segment_header()[:-1].decode("utf-8"))
        header["format"] = 99
        foreign = path / "seg-00000002.dat"
        foreign.write_bytes(json.dumps(header).encode("utf-8") + b"\n")
        os.unlink(path / "index.json")
        with AnalysisStore(path) as store:
            assert len(store) == 6
            store.compact()
            assert not foreign.exists()
            assert len(store) == 6


class TestCrashedCompaction:
    def test_leftover_segments_after_crash_are_merged(self, tmp_path):
        # a compaction that crashed after writing new segments but
        # before deleting the old ones leaves both on disk; reopening
        # must not lose entries or serve wrong values
        path = seeded_store(tmp_path / "s")
        seg = segment_files(path)[0]
        copy = path / "seg-00000002.dat"
        copy.write_bytes(seg.read_bytes())
        os.unlink(path / "index.json")
        with AnalysisStore(path) as store:
            assert len(store) == 6
            for i in range(6):
                assert store.get(key(i)).value == ("payload", i)
            store.compact()
        with AnalysisStore(path) as store:
            assert len(store) == 6


class TestFrameScanEdgeCases:
    def test_oversized_torn_frame_stops_the_scan(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        good = pack_frame(key(1), pickle.dumps(("ok", 0.0)))
        bogus = FRAME_HEADER.pack(b"\xabRS1", key(2), 2 ** 31, 0)
        (path / "seg-00000001.dat").write_bytes(
            segment_header() + good + bogus)
        with AnalysisStore(path) as store:
            assert len(store) == 1
            assert store.get(key(1)).value == "ok"

    def test_bad_magic_stops_the_scan(self, tmp_path):
        path = tmp_path / "s"
        path.mkdir()
        good = pack_frame(key(1), pickle.dumps(("ok", 0.0)))
        payload = pickle.dumps(("bad", 0.0))
        bad = (struct.pack("<4s16sII", b"XXXX", key(2), len(payload),
                           checksum(payload)) + payload)
        (path / "seg-00000001.dat").write_bytes(
            segment_header() + good + bad)
        with AnalysisStore(path) as store:
            assert len(store) == 1
            assert store.get(key(2)) is None
