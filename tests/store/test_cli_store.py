"""CLI coverage for ``--store`` flags and the ``repro store`` command."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_store_flag_on_admit_sweep_serve_recover(self):
        for argv in (["admit", "--store", "d"],
                     ["sweep", "--store", "d"],
                     ["serve", "--journal", "j", "--store", "d"],
                     ["recover", "--journal", "j", "--store", "d"]):
            assert build_parser().parse_args(argv).store == "d"

    def test_store_subcommand_actions(self):
        args = build_parser().parse_args(["store", "inspect", "dir"])
        assert args.action == "inspect" and args.path == "dir"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "defrag", "dir"])


class TestAdmitWithStore:
    def test_second_run_is_served_from_the_store(self, tmp_path, capsys):
        sdir = str(tmp_path / "store")
        argv = ["admit", "--hops", "3", "--deadline", "30",
                "--max", "30", "--store", sdir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out

        def admitted(out):
            return next(ln for ln in out.splitlines() if "admitted" in ln)

        assert admitted(warm) == admitted(cold)
        # the warm engine answered from the store: zero cold misses
        assert "misses                 0" in warm
        assert "hit_rate          100.0%" in warm

    def test_store_implies_incremental(self, tmp_path, capsys):
        sdir = str(tmp_path / "store")
        assert main(["admit", "--hops", "2", "--max", "5",
                     "--store", sdir]) == 0
        out = capsys.readouterr().out
        assert "engine stats" in out  # engine rung engaged
        assert "store:" in out


class TestStoreSubcommand:
    def seed(self, tmp_path, capsys):
        sdir = str(tmp_path / "store")
        assert main(["admit", "--hops", "2", "--max", "5",
                     "--store", sdir]) == 0
        capsys.readouterr()
        return sdir

    def test_inspect(self, tmp_path, capsys):
        sdir = self.seed(tmp_path, capsys)
        assert main(["store", "inspect", sdir]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "repro-analysis-v1" in out

    def test_verify_clean(self, tmp_path, capsys):
        sdir = self.seed(tmp_path, capsys)
        assert main(["store", "verify", sdir]) == 0
        assert "all good" in capsys.readouterr().out

    def test_verify_detects_corruption(self, tmp_path, capsys):
        sdir = self.seed(tmp_path, capsys)
        seg = next((tmp_path / "store").glob("seg-*.dat"))
        blob = bytearray(seg.read_bytes())
        blob[-5] ^= 0xFF
        seg.write_bytes(bytes(blob))
        assert main(["store", "verify", sdir]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_compact(self, tmp_path, capsys):
        sdir = self.seed(tmp_path, capsys)
        assert main(["store", "compact", sdir]) == 0
        assert "compacted:" in capsys.readouterr().out
        assert main(["store", "verify", sdir]) == 0

    def test_compact_with_cap_evicts(self, tmp_path, capsys):
        sdir = self.seed(tmp_path, capsys)
        assert main(["store", "compact", sdir,
                     "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "kept 0" in out

    def test_inspect_missing_directory_fails(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("x")
        with pytest.raises(SystemExit, match="store"):
            main(["store", "inspect", str(target)])


class TestSweepWithStore:
    def test_sweep_store_roundtrip(self, tmp_path, capsys):
        sdir = str(tmp_path / "store")
        argv = ["sweep", "--analyzers", "integrated", "--hops", "2",
                "--loads", "0.3,0.6", "--serial", "--store", sdir]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # identical point table; second run wrote nothing new
        assert cold.splitlines()[:3] == warm.splitlines()[:3]
        assert "0 new" in warm


class TestServeRecoverWithStore:
    def test_serve_then_warm_recover(self, tmp_path, capsys):
        jdir = str(tmp_path / "journal")
        sdir = str(tmp_path / "store")
        assert main(["serve", "--journal", jdir, "--hops", "3",
                     "--count", "3", "--store", sdir]) == 0
        capsys.readouterr()
        assert main(["recover", "--journal", jdir,
                     "--store", sdir]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
