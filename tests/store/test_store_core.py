"""Unit tests for the persistent analysis store's core mechanics."""

import os
import pickle

import pytest

from repro.errors import StoreError
from repro.store import AnalysisStore, FORMAT_VERSION, VALUE_SCHEMA
from repro.store.format import KEY_BYTES


def key(n: int) -> bytes:
    return n.to_bytes(KEY_BYTES, "big")


class TestRoundtrip:
    def test_put_get_roundtrip(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            assert store.put(key(1), {"delay": 1.25}, 0.5)
            entry = store.get(key(1))
            assert entry is not None
            assert entry.value == {"delay": 1.25}
            assert entry.compute_time == 0.5
            assert store.stats.hits == 1 and store.stats.writes == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            assert store.get(key(9)) is None
            assert store.stats.misses == 1

    def test_persists_across_reopen(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            for n in range(20):
                store.put(key(n), ("value", n), float(n))
        with AnalysisStore(tmp_path / "s") as store:
            assert len(store) == 20
            for n in range(20):
                entry = store.get(key(n))
                assert entry is not None and entry.value == ("value", n)

    def test_float_values_survive_bit_exactly(self, tmp_path):
        vals = [0.1 + 0.2, 1e-308, 1.7976931348623157e308, -0.0]
        with AnalysisStore(tmp_path / "s") as store:
            for n, v in enumerate(vals):
                store.put(key(n), v, 0.0)
        with AnalysisStore(tmp_path / "s") as store:
            for n, v in enumerate(vals):
                got = store.get(key(n)).value
                assert got.hex() == v.hex()

    def test_first_write_wins(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            assert store.put(key(1), "first", 1.0) is True
            assert store.put(key(1), "second", 2.0) is False
            assert store.get(key(1)).value == "first"

    def test_seed_counts_only_new_entries(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            store.put(key(1), "old", 0.0)
            added = store.seed([(key(1), "dup", 0.0),
                                (key(2), "new", 0.1),
                                (key(3), "new", 0.2)])
            assert added == 2 and len(store) == 3

    def test_contains_and_keys(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            store.put(key(1), "a", 0.0)
            assert key(1) in store and key(2) not in store
            assert list(store.keys()) == [key(1)]


class TestArgumentValidation:
    def test_bad_key_length_raises(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            with pytest.raises(StoreError, match="digest"):
                store.put(b"short", "v", 0.0)

    def test_unpicklable_value_raises(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            with pytest.raises(StoreError, match="picklable"):
                store.put(key(1), lambda: None, 0.0)

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            AnalysisStore(tmp_path / "s", max_bytes=0)

    def test_tiny_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            AnalysisStore(tmp_path / "s", segment_bytes=16)

    def test_path_collision_with_file_raises(self, tmp_path):
        target = tmp_path / "plain"
        target.write_text("not a store")
        with pytest.raises(StoreError, match="not a directory"):
            AnalysisStore(target)

    def test_closed_store_refuses_io(self, tmp_path):
        store = AnalysisStore(tmp_path / "s")
        store.put(key(1), "v", 0.0)
        store.close()
        assert store.closed
        with pytest.raises(StoreError, match="closed"):
            store.get(key(1))
        with pytest.raises(StoreError, match="closed"):
            store.put(key(2), "v", 0.0)
        store.close()  # idempotent


class TestReadOnly:
    def test_read_only_put_raises(self, tmp_path):
        AnalysisStore(tmp_path / "s").close()
        with AnalysisStore(tmp_path / "s", read_only=True) as store:
            with pytest.raises(StoreError, match="read-only"):
                store.put(key(1), "v", 0.0)

    def test_read_only_missing_directory_is_empty(self, tmp_path):
        with AnalysisStore(tmp_path / "absent", read_only=True) as store:
            assert len(store) == 0
            assert store.get(key(1)) is None
        assert not (tmp_path / "absent").exists()

    def test_read_only_sees_writer_output(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as writer:
            writer.put(key(1), "shared", 0.25)
            writer.flush()
            with AnalysisStore(tmp_path / "s", read_only=True) as reader:
                assert reader.get(key(1)).value == "shared"


class TestIndexAndSegments:
    def test_index_written_on_close(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            store.put(key(1), "v", 0.0)
        assert (tmp_path / "s" / "index.json").exists()

    def test_reopen_without_index_rescans(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            for n in range(5):
                store.put(key(n), n * 1.5, 0.0)
        os.unlink(tmp_path / "s" / "index.json")
        with AnalysisStore(tmp_path / "s") as store:
            assert len(store) == 5
            assert store.get(key(3)).value == 4.5

    def test_stale_index_falls_back_to_scan(self, tmp_path):
        # write one entry, snapshot, then append more without snapshot:
        # the index segment sizes no longer match and must be ignored
        store = AnalysisStore(tmp_path / "s", flush_every=1000)
        store.put(key(1), "a", 0.0)
        store.flush()
        store.put(key(2), "b", 0.0)
        store._close_writer()  # skip flush(): index left stale
        store._closed = True
        with AnalysisStore(tmp_path / "s") as reopened:
            assert len(reopened) == 2
            assert reopened.get(key(2)).value == "b"

    def test_segment_roll_over(self, tmp_path):
        blob = b"x" * 2000
        with AnalysisStore(tmp_path / "s", segment_bytes=4096) as store:
            for n in range(6):
                store.put(key(n), blob, 0.0)
        names = sorted(p.name for p in (tmp_path / "s").glob("seg-*.dat"))
        assert len(names) > 1
        with AnalysisStore(tmp_path / "s") as store:
            assert len(store) == 6
            assert store.get(key(5)).value == blob

    def test_describe_snapshot(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            store.put(key(1), "v", 0.0)
            info = store.describe()
            assert info["format"] == FORMAT_VERSION
            assert info["schema"] == VALUE_SCHEMA
            assert info["entries"] == 1
            assert info["segments"] == 1
            assert info["live_bytes"] > 0
            assert not info["read_only"]


class TestCompaction:
    def test_compaction_preserves_entries(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            for n in range(10):
                store.put(key(n), ("v", n), 0.0)
            report = store.compact()
            assert report.kept == 10 and report.dropped == 0
            for n in range(10):
                assert store.get(key(n)).value == ("v", n)
        with AnalysisStore(tmp_path / "s") as store:
            assert len(store) == 10

    def test_compaction_reclaims_dead_bytes(self, tmp_path):
        # dead bytes come from corrupt-dropped entries; simulate by
        # forgetting half the keys before compacting
        with AnalysisStore(tmp_path / "s") as store:
            blob = b"y" * 500
            for n in range(10):
                store.put(key(n), blob, 0.0)
            for n in range(5):
                store._entries.pop(key(n))
            before = store.segment_bytes_on_disk
            report = store.compact()
            assert report.kept == 5
            assert store.segment_bytes_on_disk < before

    def test_lru_eviction_order(self, tmp_path):
        blob = b"z" * 400
        with AnalysisStore(tmp_path / "s") as store:
            for n in range(8):
                store.put(key(n), blob, 0.0)
            store.get(key(0))  # refresh: key 0 becomes most recent
            cap = store.live_bytes // 2
            report = store.compact(max_bytes=cap)
            assert report.dropped > 0
            assert key(0) in store          # refreshed entry survives
            assert key(1) not in store      # oldest unrefreshed dropped
            assert store.stats.evicted == report.dropped

    def test_auto_compaction_enforces_cap(self, tmp_path):
        blob = b"w" * 600
        entry_bytes = len(pickle.dumps((blob, 0.0),
                                       protocol=pickle.HIGHEST_PROTOCOL))
        with AnalysisStore(tmp_path / "s",
                           max_bytes=3 * entry_bytes) as store:
            for n in range(50):
                store.put(key(n), blob, 0.0)
            assert store.stats.compactions > 0
            assert store.live_bytes <= 2 * store.max_bytes
        with AnalysisStore(tmp_path / "s") as store:
            assert store.live_bytes <= 3 * entry_bytes

    def test_read_only_compact_raises(self, tmp_path):
        AnalysisStore(tmp_path / "s").close()
        with AnalysisStore(tmp_path / "s", read_only=True) as store:
            with pytest.raises(StoreError, match="read-only"):
                store.compact()


class TestVerify:
    def test_verify_clean_store(self, tmp_path):
        with AnalysisStore(tmp_path / "s") as store:
            for n in range(4):
                store.put(key(n), n, 0.0)
            report = store.verify()
            assert report.ok and report.entries == 4
            assert "all good" in report.render()
