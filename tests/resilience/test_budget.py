"""Unit tests for the wall-clock analysis budget."""

import signal
import threading
import time

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.errors import AnalysisError, AnalysisTimeoutError
from repro.network.tandem import CONNECTION0, build_tandem
from repro.resilience.budget import call_with_budget


class TestCallWithBudget:
    def test_returns_result_within_budget(self):
        assert call_with_budget(lambda: 42, 5.0) == 42

    def test_real_analysis_within_budget(self):
        net = build_tandem(2, 0.5)
        bound = call_with_budget(
            lambda: DecomposedAnalysis().analyze(net).delay_of(
                CONNECTION0), 30.0)
        assert bound > 0

    def test_timeout_raises_with_attributes(self):
        with pytest.raises(AnalysisTimeoutError) as ei:
            call_with_budget(lambda: time.sleep(5), 0.1,
                             description="slow test")
        err = ei.value
        assert err.budget == pytest.approx(0.1)
        assert err.elapsed >= 0.1
        assert "slow test" in str(err)
        assert isinstance(err, AnalysisError)  # chain-catchable

    def test_exceptions_propagate(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            call_with_budget(boom, 5.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            call_with_budget(lambda: 1, 0.0)

    def test_alarm_state_restored(self):
        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(AnalysisTimeoutError):
            call_with_budget(lambda: time.sleep(1), 0.05)
        assert signal.getsignal(signal.SIGALRM) is before
        delay, _ = signal.setitimer(signal.ITIMER_REAL, 0)
        signal.setitimer(signal.ITIMER_REAL, 0)

    def test_thread_fallback_times_out(self):
        # off the main thread SIGALRM is unusable; the thread-based
        # fallback must still deliver the timeout
        result: dict = {}

        def run():
            try:
                call_with_budget(lambda: time.sleep(5), 0.1)
            except AnalysisTimeoutError as exc:
                result["error"] = exc

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=3)
        assert isinstance(result.get("error"), AnalysisTimeoutError)

    def test_thread_fallback_returns_value(self):
        result: dict = {}

        def run():
            result["value"] = call_with_budget(lambda: 7, 5.0)

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=3)
        assert result.get("value") == 7


class TestCooperativeMechanism:
    """The context path: no signals, no threads, any call site."""

    def test_context_aware_callable_gets_deadline(self):
        seen: dict = {}

        def fn(ctx):
            seen["deadline"] = ctx.deadline
            return "done"

        assert call_with_budget(fn, 5.0) == "done"
        assert seen["deadline"] is not None
        assert seen["deadline"].budget == pytest.approx(5.0)

    def test_keyword_only_ctx_supported(self):
        def fn(*, ctx):
            return ctx.deadline.budget

        assert call_with_budget(fn, 2.0) == pytest.approx(2.0)

    def test_cooperative_timeout_via_checkpoint(self):
        def fn(ctx):
            for _ in range(1000):
                time.sleep(0.01)
                ctx.checkpoint("loop")
            return "never"

        t0 = time.perf_counter()
        with pytest.raises(AnalysisTimeoutError):
            call_with_budget(fn, 0.1, description="coop test")
        assert time.perf_counter() - t0 < 2.0  # stopped at a checkpoint

    def test_base_context_observability_flows_through(self):
        from repro.context import AnalysisContext

        base = AnalysisContext.tracing()

        def fn(ctx):
            assert ctx.metrics is base.metrics  # shared, not replaced
            ctx.count("probe")
            return 1

        call_with_budget(fn, 5.0, ctx=base)
        assert base.metrics.get("probe") == 1.0
        assert base.deadline is None  # caller's own context untouched

    def test_legacy_closure_default_is_not_context_aware(self):
        # the `lambda a=analyzer: ...` idiom must stay a zero-arg call
        marker = object()
        out = call_with_budget(lambda a=marker: a, 5.0)
        assert out is marker

    def test_cooperative_mechanism_rejects_zero_arg_callable(self):
        with pytest.raises(ValueError):
            call_with_budget(lambda: 1, 5.0, mechanism="cooperative")

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError):
            call_with_budget(lambda: 1, 5.0, mechanism="psychic")


class TestThreadCancellation:
    """An abandoned worker must observe its cancellation and stop."""

    def test_abandoned_worker_stops_at_next_checkpoint(self):
        started = threading.Event()
        outcome: dict = {}

        def fn(ctx):
            started.set()
            try:
                for _ in range(500):
                    time.sleep(0.02)
                    ctx.checkpoint("abandoned loop")
                outcome["result"] = "ran to completion"
            except AnalysisTimeoutError as exc:
                outcome["result"] = "stopped"
                outcome["error"] = exc

        with pytest.raises(AnalysisTimeoutError):
            call_with_budget(fn, 0.1, mechanism="thread",
                             description="leak test")
        assert started.wait(timeout=2)
        for _ in range(100):  # the worker stops within ~a checkpoint
            if "result" in outcome:
                break
            time.sleep(0.05)
        assert outcome.get("result") == "stopped"
        assert "cancelled" in str(outcome["error"])

    def test_thread_mechanism_timeout_attributes(self):
        with pytest.raises(AnalysisTimeoutError) as ei:
            call_with_budget(lambda: time.sleep(5), 0.1,
                             mechanism="thread", description="worker")
        assert ei.value.budget == pytest.approx(0.1)
        assert "worker" in str(ei.value)

    def test_thread_mechanism_returns_value(self):
        assert call_with_budget(lambda: 11, 5.0,
                                mechanism="thread") == 11
