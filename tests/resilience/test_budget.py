"""Unit tests for the wall-clock analysis budget."""

import signal
import threading
import time

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.errors import AnalysisError, AnalysisTimeoutError
from repro.network.tandem import CONNECTION0, build_tandem
from repro.resilience.budget import call_with_budget


class TestCallWithBudget:
    def test_returns_result_within_budget(self):
        assert call_with_budget(lambda: 42, 5.0) == 42

    def test_real_analysis_within_budget(self):
        net = build_tandem(2, 0.5)
        bound = call_with_budget(
            lambda: DecomposedAnalysis().analyze(net).delay_of(
                CONNECTION0), 30.0)
        assert bound > 0

    def test_timeout_raises_with_attributes(self):
        with pytest.raises(AnalysisTimeoutError) as ei:
            call_with_budget(lambda: time.sleep(5), 0.1,
                             description="slow test")
        err = ei.value
        assert err.budget == pytest.approx(0.1)
        assert err.elapsed >= 0.1
        assert "slow test" in str(err)
        assert isinstance(err, AnalysisError)  # chain-catchable

    def test_exceptions_propagate(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            call_with_budget(boom, 5.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            call_with_budget(lambda: 1, 0.0)

    def test_alarm_state_restored(self):
        before = signal.getsignal(signal.SIGALRM)
        with pytest.raises(AnalysisTimeoutError):
            call_with_budget(lambda: time.sleep(1), 0.05)
        assert signal.getsignal(signal.SIGALRM) is before
        delay, _ = signal.setitimer(signal.ITIMER_REAL, 0)
        signal.setitimer(signal.ITIMER_REAL, 0)

    def test_thread_fallback_times_out(self):
        # off the main thread SIGALRM is unusable; the thread-based
        # fallback must still deliver the timeout
        result: dict = {}

        def run():
            try:
                call_with_budget(lambda: time.sleep(5), 0.1)
            except AnalysisTimeoutError as exc:
                result["error"] = exc

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=3)
        assert isinstance(result.get("error"), AnalysisTimeoutError)

    def test_thread_fallback_returns_value(self):
        result: dict = {}

        def run():
            result["value"] = call_with_budget(lambda: 7, 5.0)

        t = threading.Thread(target=run)
        t.start()
        t.join(timeout=3)
        assert result.get("value") == 7
