"""Unit tests for the composable fault scenarios."""

import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import ResilienceError
from repro.network.flow import Flow
from repro.network.tandem import build_tandem
from repro.resilience.faults import (
    BurstInflation,
    CompositeScenario,
    FaultScenario,
    ServerDegradation,
    ServerFailure,
)


@pytest.fixture
def net():
    return build_tandem(3, 0.6)


class TestServerDegradation:
    def test_scales_only_the_target(self, net):
        faulted = ServerDegradation(2, 0.5).apply(net)
        assert faulted.server(2).capacity == pytest.approx(0.5)
        assert faulted.server(1).capacity == pytest.approx(1.0)
        assert faulted.server(2).discipline == net.server(2).discipline

    def test_keeps_all_flows(self, net):
        faulted = ServerDegradation(2, 0.9).apply(net)
        assert set(faulted.flows) == set(net.flows)

    def test_original_untouched(self, net):
        ServerDegradation(2, 0.5).apply(net)
        assert net.server(2).capacity == pytest.approx(1.0)

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ResilienceError):
            ServerDegradation(1, factor)

    def test_unknown_server(self, net):
        scenario = ServerDegradation(99, 0.5)
        with pytest.raises(ResilienceError) as ei:
            scenario.apply(net)
        assert ei.value.scenario == scenario.describe()


class TestServerFailure:
    def test_removes_server_and_severs_flows(self, net):
        scenario = ServerFailure(2)
        faulted = scenario.apply(net)
        assert 2 not in faulted.servers
        for name in scenario.severed_flows(net):
            assert name not in faulted.flows
        assert "short_1" in faulted.flows  # does not touch server 2

    def test_severed_flows_listed(self, net):
        severed = ServerFailure(2).severed_flows(net)
        assert "conn0" in severed and "short_2" in severed
        assert "short_1" not in severed

    def test_failed_servers(self, net):
        assert ServerFailure(2).failed_servers(net) == frozenset({2})

    def test_unknown_server(self, net):
        with pytest.raises(ResilienceError):
            ServerFailure("ghost").apply(net)


class TestBurstInflation:
    def test_inflates_one_flow(self, net):
        faulted = BurstInflation(2.0, ["conn0"]).apply(net)
        old = net.flow("conn0").bucket
        new = faulted.flow("conn0").bucket
        assert new.sigma == pytest.approx(2 * old.sigma)
        assert new.rho == pytest.approx(old.rho)
        assert new.peak == old.peak
        assert faulted.flow("short_1").bucket.sigma == pytest.approx(
            net.flow("short_1").bucket.sigma)

    def test_inflates_every_source_by_default(self, net):
        faulted = BurstInflation(3.0).apply(net)
        for f in net.iter_flows():
            assert faulted.flow(f.name).bucket.sigma == pytest.approx(
                3 * f.bucket.sigma)

    def test_preserves_deadline_and_priority(self):
        flow = Flow("f", TokenBucket(1.0, 0.2), (1,), deadline=7.0,
                    priority=3)
        net = build_tandem(1, 0.5).with_flow(flow)
        faulted = BurstInflation(2.0, ["f"]).apply(net)
        assert faulted.flow("f").deadline == 7.0
        assert faulted.flow("f").priority == 3

    @pytest.mark.parametrize("factor", [0.0, -1.0])
    def test_rejects_bad_factor(self, factor):
        with pytest.raises(ResilienceError):
            BurstInflation(factor)

    def test_unknown_flow(self, net):
        with pytest.raises(ResilienceError):
            BurstInflation(2.0, ["ghost"]).apply(net)


class TestComposite:
    def test_applies_in_sequence(self, net):
        scenario = CompositeScenario([
            ServerDegradation(1, 0.8),
            BurstInflation(2.0, ["conn0"]),
        ])
        faulted = scenario.apply(net)
        assert faulted.server(1).capacity == pytest.approx(0.8)
        assert faulted.flow("conn0").bucket.sigma == pytest.approx(2.0)

    def test_failed_servers_union(self, net):
        scenario = CompositeScenario([ServerFailure(1), ServerFailure(3)])
        assert scenario.failed_servers(net) == frozenset({1, 3})

    def test_describe_joins(self):
        scenario = CompositeScenario([ServerFailure(1),
                                      BurstInflation(2.0)])
        assert " + " in scenario.describe()
        assert str(scenario) == scenario.describe()

    def test_empty_rejected(self):
        with pytest.raises(ResilienceError):
            CompositeScenario([])

    def test_is_a_fault_scenario(self):
        assert issubclass(CompositeScenario, FaultScenario)
