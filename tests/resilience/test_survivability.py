"""Unit tests for survivability analysis (verdicts, reroute, rendering)."""

import math

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import build_tandem
from repro.network.topology import Network, ServerSpec
from repro.resilience.faults import (
    BurstInflation,
    ServerDegradation,
    ServerFailure,
)
from repro.resilience.survivability import (
    MET,
    SEVERED,
    VIOLATED,
    render_survivability,
    survivability,
)

ANALYZER = DecomposedAnalysis()


def deadlined_tandem(n=3, load=0.6, slack=1.5):
    """The paper tandem with deadlines at ``slack`` x healthy bounds."""
    net = build_tandem(n, load)
    base = ANALYZER.analyze(net)
    return Network(net.servers.values(),
                   [f.with_deadline(slack * base.delay_of(f.name))
                    for f in net.iter_flows()])


def diamond(with_deadlines=math.inf):
    """a -> {b | c} -> d with the target routed over b.

    The helper flows a->c and c->d make the alternate branch part of
    the observable server graph, so failing b leaves a reroute.
    """
    bucket = TokenBucket(1.0, 0.1)
    servers = [ServerSpec(s, 1.0) for s in "abcd"]
    flows = [
        Flow("target", bucket, ("a", "b", "d"), deadline=with_deadlines),
        Flow("upper", bucket, ("a", "c")),
        Flow("lower", bucket, ("c", "d")),
    ]
    return Network(servers, flows)


class TestVerdicts:
    def test_mild_degradation_survives(self):
        net = deadlined_tandem()
        report = survivability(net, [ServerDegradation(2, 0.95)],
                               ANALYZER)
        assert report.survives
        outcome = report.outcomes[0]
        assert outcome.n_met == len(net.flows)
        assert outcome.error is None
        for v in outcome.verdicts:
            assert v.status == MET
            assert v.bound >= v.baseline

    def test_heavy_degradation_violates(self):
        net = deadlined_tandem(slack=1.05)
        report = survivability(net, [ServerDegradation(2, 0.7)],
                               ANALYZER)
        outcome = report.outcomes[0]
        assert not outcome.survives
        assert outcome.n_violated >= 1
        assert set(report.worst_flows()) == {
            v.flow for v in outcome.verdicts if v.status != MET}

    def test_overloading_degradation_marks_all_violated(self):
        net = deadlined_tandem(load=0.8)
        # 0.8 load onto a 50%-capacity server -> utilization 1.6
        report = survivability(net, [ServerDegradation(2, 0.5)],
                               ANALYZER)
        outcome = report.outcomes[0]
        assert outcome.error is not None
        assert "InstabilityError" in outcome.error
        for v in outcome.verdicts:
            assert v.status == VIOLATED
            assert math.isinf(v.bound)

    def test_failure_severs_without_alternate_path(self):
        net = deadlined_tandem()
        report = survivability(net, [ServerFailure(2)], ANALYZER)
        outcome = report.outcomes[0]
        severed = {v.flow for v in outcome.verdicts
                   if v.status == SEVERED}
        assert "conn0" in severed and "short_2" in severed
        assert "short_1" not in severed

    def test_burst_inflation_verdicts(self):
        net = deadlined_tandem(slack=1.1)
        report = survivability(net, [BurstInflation(5.0)], ANALYZER)
        assert not report.survives
        assert report.outcomes[0].n_violated >= 1

    def test_one_outcome_per_scenario_in_order(self):
        net = deadlined_tandem()
        scenarios = [ServerDegradation(1, 0.9), ServerFailure(3)]
        report = survivability(net, scenarios, ANALYZER)
        assert [o.scenario for o in report.outcomes] == [
            s.describe() for s in scenarios]
        assert report.algorithm == ANALYZER.name


class TestReroute:
    def test_reroutes_around_failure(self):
        report = survivability(diamond(), [ServerFailure("b")], ANALYZER)
        verdict = {v.flow: v for v in report.outcomes[0].verdicts}
        assert verdict["target"].status == MET
        assert verdict["target"].rerouted
        assert "rerouted via" in verdict["target"].detail
        assert math.isfinite(verdict["target"].bound)

    def test_rerouted_flow_still_checked_against_deadline(self):
        # deadline so tight even the healthy path only just makes it:
        # the rerouted (also contended) path must be re-tested, and a
        # near-zero deadline fails it
        net = diamond(with_deadlines=1e-9)
        report = survivability(net, [ServerFailure("b")], ANALYZER)
        verdict = {v.flow: v for v in report.outcomes[0].verdicts}
        assert verdict["target"].status == VIOLATED
        assert verdict["target"].rerouted

    def test_reroute_disabled(self):
        report = survivability(diamond(), [ServerFailure("b")], ANALYZER,
                               reroute=False)
        verdict = {v.flow: v for v in report.outcomes[0].verdicts}
        assert verdict["target"].status == SEVERED

    def test_no_reroute_when_entry_fails(self):
        report = survivability(diamond(), [ServerFailure("a")], ANALYZER)
        verdict = {v.flow: v for v in report.outcomes[0].verdicts}
        assert verdict["target"].status == SEVERED


class TestRender:
    def test_lists_casualties(self):
        net = deadlined_tandem()
        report = survivability(net, [ServerFailure(2),
                                     ServerDegradation(1, 0.95)],
                               ANALYZER)
        text = render_survivability(report)
        assert "server 2 failed" in text
        assert "conn0: severed" in text
        assert "SURVIVES" in text and "DEGRADED" in text
        # surviving flows only shown in verbose mode
        assert "short_1:" not in text
        assert "short_1:" in render_survivability(report, verbose=True)
