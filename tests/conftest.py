"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.curves.token_bucket import TokenBucket
from repro.network.tandem import build_tandem


@pytest.fixture
def unit_bucket() -> TokenBucket:
    """sigma=1, rho=0.2, peak-limited at line rate 1 (paper defaults)."""
    return TokenBucket(1.0, 0.2, peak=1.0)


@pytest.fixture
def affine_bucket() -> TokenBucket:
    """sigma=1, rho=0.2, no peak limit."""
    return TokenBucket(1.0, 0.2)


@pytest.fixture
def line_unit() -> PiecewiseLinearCurve:
    """The unit-capacity service line C*t with C=1."""
    return PiecewiseLinearCurve.line(1.0)


@pytest.fixture
def tandem4():
    """A 4-hop tandem at 60% load (fast to analyze)."""
    return build_tandem(4, 0.6)
