"""Shared fixtures and the per-test hang guard.

The resilience subsystem deliberately exercises hung and crashed
workers; if one of those tests (or a runaway analysis) ever wedged, it
would take the whole CI run with it.  Every test therefore runs under a
SIGALRM wall-clock guard — a test that exceeds the limit fails with a
TimeoutError instead of hanging forever.  Override the limit with the
``REPRO_TEST_TIMEOUT`` environment variable (seconds; ``0`` disables).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.curves.piecewise import PiecewiseLinearCurve
from repro.curves.token_bucket import TokenBucket
from repro.network.tandem import build_tandem

TEST_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "300"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if (TEST_TIMEOUT <= 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT:g}s hang guard "
            "(REPRO_TEST_TIMEOUT)")

    prev_handler = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, prev_handler)


@pytest.fixture
def unit_bucket() -> TokenBucket:
    """sigma=1, rho=0.2, peak-limited at line rate 1 (paper defaults)."""
    return TokenBucket(1.0, 0.2, peak=1.0)


@pytest.fixture
def affine_bucket() -> TokenBucket:
    """sigma=1, rho=0.2, no peak limit."""
    return TokenBucket(1.0, 0.2)


@pytest.fixture
def line_unit() -> PiecewiseLinearCurve:
    """The unit-capacity service line C*t with C=1."""
    return PiecewiseLinearCurve.line(1.0)


@pytest.fixture
def tandem4():
    """A 4-hop tandem at 60% load (fast to analyze)."""
    return build_tandem(4, 0.6)
