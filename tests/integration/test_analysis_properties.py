"""Property-based tests on analysis-level invariants.

Structural monotonicity laws every sound worst-case analysis must obey:
enlarging a workload (bigger bursts, higher rates, extra flows) can only
loosen bounds; shrinking it can only tighten them.  Violations here
would indicate a non-monotone step in the propagation or kernels.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec

loads = st.floats(min_value=0.05, max_value=0.9)
sizes = st.integers(min_value=1, max_value=5)

ANALYZERS = [DecomposedAnalysis, IntegratedAnalysis]


class TestMonotoneInLoad:
    @settings(max_examples=15, deadline=None)
    @given(sizes, loads, st.floats(min_value=0.01, max_value=0.09))
    def test_bounds_increase_with_load(self, n, u, du):
        u2 = min(u + du, 0.95)
        for analyzer_cls in ANALYZERS:
            a = analyzer_cls().analyze(build_tandem(n, u)) \
                .delay_of(CONNECTION0)
            b = analyzer_cls().analyze(build_tandem(n, u2)) \
                .delay_of(CONNECTION0)
            assert b >= a - 1e-9


class TestMonotoneInBurst:
    @settings(max_examples=15, deadline=None)
    @given(sizes, loads, st.floats(min_value=0.1, max_value=3.0))
    def test_bounds_increase_with_sigma(self, n, u, extra):
        for analyzer_cls in ANALYZERS:
            a = analyzer_cls().analyze(build_tandem(n, u, sigma=1.0)) \
                .delay_of(CONNECTION0)
            b = analyzer_cls().analyze(
                build_tandem(n, u, sigma=1.0 + extra)) \
                .delay_of(CONNECTION0)
            assert b >= a - 1e-9


class TestMonotoneInWorkload:
    @settings(max_examples=10, deadline=None)
    @given(loads)
    def test_adding_a_flow_never_tightens_others(self, u):
        base = build_tandem(3, min(u, 0.7))
        extra = Flow("intruder", TokenBucket(1.0, 0.05, peak=1.0),
                     (2, 3))
        bigger = base.with_flow(extra)
        for analyzer_cls in ANALYZERS:
            rep_a = analyzer_cls().analyze(base)
            rep_b = analyzer_cls().analyze(bigger)
            for name in base.flows:
                assert rep_b.delay_of(name) >= \
                    rep_a.delay_of(name) - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(loads)
    def test_removing_a_flow_never_loosens_others(self, u):
        net = build_tandem(3, min(u, 0.85))
        smaller = net.without_flow("short_2")
        for analyzer_cls in ANALYZERS:
            rep_a = analyzer_cls().analyze(net)
            rep_b = analyzer_cls().analyze(smaller)
            for name in smaller.flows:
                assert rep_b.delay_of(name) <= \
                    rep_a.delay_of(name) + 1e-9


class TestCapacityScaling:
    @settings(max_examples=10, deadline=None)
    @given(sizes, loads, st.floats(min_value=1.5, max_value=100.0))
    def test_joint_scaling_invariance(self, n, u, c):
        """Scaling capacity and all rates by c and bursts by c leaves
        delays unchanged (time-rescaling invariance)."""
        base = build_tandem(n, u, sigma=1.0, capacity=1.0)
        scaled = build_tandem(n, u, sigma=c, capacity=c)
        a = DecomposedAnalysis().analyze(base).delay_of(CONNECTION0)
        b = DecomposedAnalysis().analyze(scaled).delay_of(CONNECTION0)
        assert b == pytest.approx(a, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(sizes, loads, st.floats(min_value=1.5, max_value=100.0))
    def test_faster_links_shrink_delay_proportionally(self, n, u, c):
        """Same bursts over c-times-faster links: delays shrink by c."""
        base = build_tandem(n, u, sigma=1.0, capacity=1.0)
        fast = build_tandem(n, u, sigma=1.0, capacity=c)
        a = DecomposedAnalysis().analyze(base).delay_of(CONNECTION0)
        b = DecomposedAnalysis().analyze(fast).delay_of(CONNECTION0)
        assert b == pytest.approx(a / c, rel=1e-9)


class TestPriorityInvariants:
    def test_sp_total_order_respected_network_wide(self):
        from repro.network.topology import Discipline
        tb = TokenBucket(1.0, 0.15, peak=1.0)
        servers = [ServerSpec(k, 1.0, Discipline.STATIC_PRIORITY)
                   for k in (1, 2)]
        flows = [Flow(f"p{p}", tb, (1, 2), priority=p)
                 for p in range(3)]
        rep = DecomposedAnalysis().analyze(Network(servers, flows))
        assert rep.delay_of("p0") <= rep.delay_of("p1") \
            <= rep.delay_of("p2")
