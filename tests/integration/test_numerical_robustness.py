"""Numerical robustness: extreme magnitudes must not break the kernels.

Delay analysis tools get fed real-world units: bits and gigabits,
microseconds and hours.  These tests push very large and very small
parameter magnitudes through the full stack and assert finite, sound,
scale-consistent results — no NaNs, no silent overflow.
"""

import math

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.core.theorem1 import theorem1_bound
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket
from repro.network.tandem import CONNECTION0, build_tandem


SCALES = [1e-6, 1e-3, 1.0, 1e3, 1e9]


class TestScaleInvariance:
    @pytest.mark.parametrize("scale", SCALES)
    def test_tandem_delays_scale_like_time(self, scale):
        """Scaling sigma by s and keeping rates fixed multiplies every
        delay by s (time-rescaling); relative improvements must be
        scale-free."""
        base = IntegratedAnalysis().analyze(build_tandem(3, 0.7, 1.0)) \
            .delay_of(CONNECTION0)
        scaled = IntegratedAnalysis().analyze(
            build_tandem(3, 0.7, sigma=scale)).delay_of(CONNECTION0)
        assert scaled == pytest.approx(base * scale, rel=1e-6)

    @pytest.mark.parametrize("scale", SCALES)
    def test_capacity_and_burst_rescaling(self, scale):
        """(sigma, C) -> (s*sigma, s*C) leaves delays unchanged."""
        base = DecomposedAnalysis().analyze(build_tandem(3, 0.7)) \
            .delay_of(CONNECTION0)
        scaled = DecomposedAnalysis().analyze(
            build_tandem(3, 0.7, sigma=scale, capacity=scale)) \
            .delay_of(CONNECTION0)
        assert scaled == pytest.approx(base, rel=1e-6)


class TestExtremeKernelInputs:
    def test_theorem1_tiny_magnitudes(self):
        f12 = P.affine(1e-9, 1e-10)
        f1 = P.affine(1e-9, 1e-10)
        res = theorem1_bound(f12, f1, P.zero(), 1e-6, 1e-6)
        assert math.isfinite(res.delay_through)
        assert res.delay_through >= 0

    def test_theorem1_huge_magnitudes(self):
        f12 = P.affine(1e9, 1e8)
        f1 = P.affine(1e9, 1e8)
        res = theorem1_bound(f12, f1, P.zero(), 1e9, 1e9)
        assert math.isfinite(res.delay_through)

    def test_near_saturation_stays_finite(self):
        # 99.99% utilization: finite (per-source rates stay <= C/4 so
        # the peak-limited FIFO bound does not diverge as U -> 1) and
        # strictly above the half-load bound
        net = build_tandem(2, 0.9999)
        d = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
        d_half = DecomposedAnalysis().analyze(build_tandem(2, 0.5)) \
            .delay_of(CONNECTION0)
        assert math.isfinite(d)
        assert d > d_half

    def test_zero_burst_flows(self):
        tb = TokenBucket(0.0, 0.2, peak=1.0)
        agg = (tb.constraint_curve() * 3.0).simplified()
        d = agg.horizontal_deviation(P.line(1.0))
        assert d == pytest.approx(0.0, abs=1e-12)

    def test_mixed_magnitudes_in_one_aggregate(self):
        big = TokenBucket(1e6, 0.1).constraint_curve()
        small = TokenBucket(1e-6, 0.1).constraint_curve()
        agg = big + small
        d = agg.horizontal_deviation(P.line(1.0))
        assert d == pytest.approx(1e6 + 1e-6, rel=1e-9)

    def test_no_nan_in_reports(self):
        rep = IntegratedAnalysis().analyze(
            build_tandem(4, 0.5, sigma=1e6, capacity=1e3))
        for fd in rep.delays.values():
            assert not math.isnan(fd.total)
            for _, d in fd.contributions:
                assert not math.isnan(d)
