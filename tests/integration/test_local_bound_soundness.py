"""Integration: per-hop simulated delays vs local analytic bounds.

Stronger than the end-to-end check — each server's local delay bound
from the (uncapped) decomposition propagation must dominate every
per-hop delay the simulator observes at that server, flow by flow.
"""

import pytest

from repro.analysis.propagation import propagate
from repro.network.tandem import build_tandem
from repro.network.generators import parking_lot
from repro.sim.simulator import simulate_greedy

PKT = 0.05


@pytest.mark.parametrize("n,u", [(2, 0.8), (4, 0.6)])
def test_tandem_local_bounds_dominate(n, u):
    net = build_tandem(n, u)
    prop = propagate(net)
    sim = simulate_greedy(net, horizon=120.0, packet_size=PKT)
    for flow in net.flows.values():
        for sid in flow.path:
            observed = sim.max_hop_delay(flow.name, sid)
            bound = prop.local[sid].delay_by_flow[flow.name]
            assert observed <= bound + PKT + 1e-9, \
                (flow.name, sid, observed, bound)


def test_parking_lot_local_bounds_dominate():
    net = parking_lot(4, 0.8)
    prop = propagate(net)
    sim = simulate_greedy(net, horizon=120.0, packet_size=PKT)
    for flow in net.flows.values():
        for sid in flow.path:
            assert sim.max_hop_delay(flow.name, sid) <= \
                prop.local[sid].delay_by_flow[flow.name] + PKT + 1e-9


def test_hop_delays_sum_to_at_most_total():
    net = build_tandem(3, 0.7)
    sim = simulate_greedy(net, horizon=60.0, packet_size=PKT)
    # worst per-hop delays need not be simultaneous, so their sum bounds
    # the observed end-to-end worst case from above
    for flow in net.flows.values():
        hop_sum = sum(sim.max_hop_delay(flow.name, sid)
                      for sid in flow.path)
        assert sim.max_delay(flow.name) <= hop_sum + 1e-9
