"""Integration: the analyses must agree where theory says they coincide.

* On a tandem, the closed forms equal the general engines (also covered
  per-module, re-checked here at scale).
* The integrated analysis with singleton partition equals capped
  decomposition.
* The relative ordering D_integrated <= D_decomposed holds for every
  flow on randomized feed-forward topologies (hypothesis).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.closed_forms import decomposed_delay
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.core.partition import PairAlongPath
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec


@st.composite
def random_feedforward(draw):
    """A random stable feed-forward network on a line of servers.

    Flows pick contiguous server intervals; rates are scaled so every
    server stays below 90% utilization.
    """
    n_servers = draw(st.integers(min_value=2, max_value=5))
    n_flows = draw(st.integers(min_value=2, max_value=6))
    flows = []
    loads = [0.0] * n_servers
    for i in range(n_flows):
        a = draw(st.integers(min_value=0, max_value=n_servers - 1))
        b = draw(st.integers(min_value=a, max_value=n_servers - 1))
        sigma = draw(st.floats(min_value=0.1, max_value=3.0))
        rho = draw(st.floats(min_value=0.01, max_value=0.3))
        # keep total per-server load < 0.9
        for k in range(a, b + 1):
            if loads[k] + rho >= 0.9:
                rho = max(0.005, (0.9 - loads[k]) / 2)
        for k in range(a, b + 1):
            loads[k] += rho
        flows.append(Flow(f"f{i}", TokenBucket(sigma, rho, peak=1.0),
                          list(range(a, b + 1))))
    servers = [ServerSpec(k) for k in range(n_servers)]
    return Network(servers, flows)


class TestClosedFormAtScale:
    @pytest.mark.parametrize("n", [6, 10, 12])
    def test_large_tandems(self, n):
        u = 0.75
        engine = DecomposedAnalysis().analyze(build_tandem(n, u)) \
            .delay_of(CONNECTION0)
        assert decomposed_delay(n, u) == pytest.approx(engine, rel=1e-9)


class TestAlgorithmOrdering:
    @settings(max_examples=20, deadline=None)
    @given(random_feedforward())
    def test_integrated_never_looser_than_decomposed(self, net):
        longest = max(net.flows.values(), key=lambda f: f.n_hops)
        integ = IntegratedAnalysis(
            strategy=PairAlongPath(longest.name)).analyze(net)
        dec = DecomposedAnalysis().analyze(net)
        for name in net.flows:
            assert integ.delay_of(name) <= dec.delay_of(name) + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(random_feedforward())
    def test_all_analyses_finite_on_stable_networks(self, net):
        for analyzer in (DecomposedAnalysis(), IntegratedAnalysis(),
                         ServiceCurveAnalysis()):
            rep = analyzer.analyze(net)
            for name in net.flows:
                assert math.isfinite(rep.delay_of(name)) or \
                    analyzer.name == "service_curve"

    @settings(max_examples=10, deadline=None)
    @given(random_feedforward())
    def test_delays_nonnegative(self, net):
        rep = IntegratedAnalysis().analyze(net)
        for fd in rep.delays.values():
            assert fd.total >= 0
            for _, d in fd.contributions:
                assert d >= 0
