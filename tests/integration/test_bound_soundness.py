"""Integration: every analytic bound must dominate simulated delays.

The fluid analyses ignore packetization; a packet-level simulation can
exceed a fluid bound by at most roughly one packet transmission time per
hop, so the assertions allow ``n_hops * packet_size / C`` of slack.

This is the strongest end-to-end check in the suite: it exercises the
curve algebra, the propagation engines, both integrated kernels and the
simulator together, under adversarial (greedy, synchronized) and random
traffic.
"""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Discipline, Network, ServerSpec
from repro.curves.token_bucket import TokenBucket
from repro.sim.simulator import NetworkSimulator, simulate_greedy
from repro.sim.sources import GreedySource, OnOffSource

PKT = 0.05


def slack(net):
    return PKT * max(f.n_hops for f in net.flows.values()) + 1e-9


@pytest.mark.parametrize("n,u", [(2, 0.4), (2, 0.9), (3, 0.7), (5, 0.6)])
class TestGreedyTraffic:
    def test_integrated_bound_sound(self, n, u):
        net = build_tandem(n, u)
        sim = simulate_greedy(net, horizon=120.0, packet_size=PKT)
        rep = IntegratedAnalysis().analyze(net)
        for name in net.flows:
            assert sim.max_delay(name) <= rep.delay_of(name) + slack(net)

    def test_decomposed_bound_sound(self, n, u):
        net = build_tandem(n, u)
        sim = simulate_greedy(net, horizon=120.0, packet_size=PKT)
        rep = DecomposedAnalysis().analyze(net)
        for name in net.flows:
            assert sim.max_delay(name) <= rep.delay_of(name) + slack(net)


class TestStaggeredTraffic:
    def test_staggered_bursts_stay_bounded(self):
        net = build_tandem(3, 0.8)
        rep = IntegratedAnalysis().analyze(net)
        # stagger cross bursts to hit conn0 downstream hops while loaded
        stagger = {name: 2.0 * i
                   for i, name in enumerate(sorted(net.flows))}
        sim = simulate_greedy(net, horizon=120.0, packet_size=PKT,
                              stagger=stagger)
        assert sim.max_delay(CONNECTION0) <= \
            rep.delay_of(CONNECTION0) + slack(net)


class TestRandomTraffic:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_onoff_sources_stay_bounded(self, seed):
        net = build_tandem(3, 0.7)
        rep = IntegratedAnalysis().analyze(net)
        sources = {
            name: OnOffSource(f.bucket, PKT, mean_on=3.0, mean_off=2.0,
                              seed=seed * 31 + i)
            for i, (name, f) in enumerate(sorted(net.flows.items()))
        }
        sim = NetworkSimulator(net, sources).run(100.0)
        for name in net.flows:
            assert sim.max_delay(name) <= rep.delay_of(name) + slack(net)


class TestTightness:
    def test_integrated_bound_not_absurdly_loose_two_hops(self):
        """Greedy synchronized traffic should get within ~3x of the
        integrated bound on a small tandem (sanity of tightness, not a
        formal claim)."""
        net = build_tandem(2, 0.8)
        sim = simulate_greedy(net, horizon=150.0, packet_size=PKT)
        bound = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
        assert sim.max_delay(CONNECTION0) >= bound / 3.0


class TestStaticPrioritySoundness:
    def test_sp_bounds_dominate_simulation(self):
        tb_hi = TokenBucket(1.0, 0.2, peak=1.0)
        tb_lo = TokenBucket(1.0, 0.3, peak=1.0)
        servers = [ServerSpec("s1", 1.0, Discipline.STATIC_PRIORITY),
                   ServerSpec("s2", 1.0, Discipline.STATIC_PRIORITY)]
        flows = [Flow("hi", tb_hi, ["s1", "s2"], priority=0),
                 Flow("lo", tb_lo, ["s1", "s2"], priority=1),
                 Flow("x1", tb_lo, ["s1"], priority=1),
                 Flow("x2", tb_lo, ["s2"], priority=1)]
        net = Network(servers, flows)
        rep = DecomposedAnalysis().analyze(net)
        sources = {name: GreedySource(f.bucket, PKT)
                   for name, f in net.flows.items()}
        sim = NetworkSimulator(net, sources).run(100.0)
        # non-preemptive SP adds one packet of blocking per hop on top
        # of the fluid (preemptive) bound
        extra = 2 * PKT
        for name in net.flows:
            assert sim.max_delay(name) <= \
                rep.delay_of(name) + slack(net) + extra
