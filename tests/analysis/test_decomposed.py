"""Unit tests for Algorithm Decomposed."""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec


class TestOnTandem:
    def test_contributions_sum_to_total(self, tandem4):
        rep = DecomposedAnalysis().analyze(tandem4)
        fd = rep.delays[CONNECTION0]
        assert sum(d for _, d in fd.contributions) == \
            pytest.approx(fd.total)
        assert [e for e, _ in fd.contributions] == [1, 2, 3, 4]

    def test_first_hop_matches_closed_form(self, tandem4):
        rep = DecomposedAnalysis().analyze(tandem4)
        e1 = dict(rep.delays[CONNECTION0].contributions)[1]
        rho = 0.15  # U=0.6 -> rho=0.15
        assert e1 == pytest.approx(2.0 / (1.0 - rho))

    def test_monotone_in_load(self):
        d = [DecomposedAnalysis().analyze(build_tandem(3, u))
             .delay_of(CONNECTION0) for u in (0.2, 0.5, 0.8)]
        assert d[0] < d[1] < d[2]

    def test_monotone_in_size(self):
        d = [DecomposedAnalysis().analyze(build_tandem(n, 0.5))
             .delay_of(CONNECTION0) for n in (1, 2, 4)]
        assert d[0] < d[1] < d[2]

    def test_capped_variant_never_worse(self, tandem4):
        plain = DecomposedAnalysis().analyze(tandem4)
        capped = DecomposedAnalysis(capped_propagation=True) \
            .analyze(tandem4)
        for name in plain.delays:
            assert capped.delay_of(name) <= plain.delay_of(name) + 1e-9

    def test_cross_flow_delays_present(self, tandem4):
        rep = DecomposedAnalysis().analyze(tandem4)
        assert rep.delay_of("short_2") > 0
        assert rep.delay_of("long_2") > rep.delay_of("short_2")

    def test_meta_contains_local_bounds(self, tandem4):
        rep = DecomposedAnalysis().analyze(tandem4)
        assert set(rep.meta["local_delay"]) == {1, 2, 3, 4}
        assert rep.meta["capped_propagation"] is False


class TestOnCustomTopology:
    def test_single_flow_single_server(self):
        tb = TokenBucket(2.0, 0.5)
        net = Network([ServerSpec("s", 1.0)], [Flow("f", tb, ["s"])])
        rep = DecomposedAnalysis().analyze(net)
        assert rep.delay_of("f") == pytest.approx(2.0)

    def test_merging_tree(self):
        # two branches merging into a shared server
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        servers = [ServerSpec(s) for s in ("a", "b", "m")]
        flows = [Flow("f1", tb, ["a", "m"]), Flow("f2", tb, ["b", "m"])]
        rep = DecomposedAnalysis().analyze(Network(servers, flows))
        # each branch server carries one fresh flow -> zero local delay
        # (peak-limited source cannot exceed the line rate)
        fd = dict(rep.delays["f1"].contributions)
        assert fd["a"] == pytest.approx(0.0)
        assert fd["m"] > 0

    def test_report_worst_flow(self, tandem4):
        rep = DecomposedAnalysis().analyze(tandem4)
        assert rep.worst().flow == CONNECTION0

    def test_all_finite(self, tandem4):
        assert DecomposedAnalysis().analyze(tandem4).all_finite()
