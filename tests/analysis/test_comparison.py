"""Unit tests for the comparison utilities and the R_{X,Y} metric."""

import math

import pytest

from repro.analysis.base import DelayReport, FlowDelay
from repro.analysis.comparison import (
    compare_analyzers,
    relative_improvement,
)
from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.network.tandem import CONNECTION0, build_tandem


class TestRelativeImprovement:
    def test_positive_when_y_tighter(self):
        assert relative_improvement(10.0, 5.0) == pytest.approx(0.5)

    def test_zero_when_equal(self):
        assert relative_improvement(7.0, 7.0) == 0.0

    def test_negative_when_y_looser(self):
        assert relative_improvement(5.0, 10.0) == pytest.approx(-1.0)

    def test_infinite_baseline(self):
        assert relative_improvement(math.inf, 5.0) == 1.0

    def test_both_infinite_nan(self):
        assert math.isnan(relative_improvement(math.inf, math.inf))

    def test_zero_baseline_nan(self):
        assert math.isnan(relative_improvement(0.0, 0.0))


class TestCompare:
    def test_rows_for_all_flows(self, tandem4):
        rows = compare_analyzers(
            tandem4, [DecomposedAnalysis(), IntegratedAnalysis()])
        assert len(rows) == len(tandem4.flows)

    def test_restricted_flows(self, tandem4):
        rows = compare_analyzers(
            tandem4, [DecomposedAnalysis()], flows=[CONNECTION0])
        assert len(rows) == 1 and rows[0].flow == CONNECTION0

    def test_row_improvement(self, tandem4):
        rows = compare_analyzers(
            tandem4, [DecomposedAnalysis(), IntegratedAnalysis()],
            flows=[CONNECTION0])
        r = rows[0].improvement("decomposed", "integrated")
        assert 0.0 < r < 1.0


class TestReportTypes:
    def test_flow_delay_validates_contributions(self):
        with pytest.raises(ValueError):
            FlowDelay("f", 10.0, ((1, 3.0), (2, 3.0)))

    def test_flow_delay_accepts_matching(self):
        fd = FlowDelay("f", 6.0, ((1, 3.0), (2, 3.0)))
        assert fd.total == 6.0

    def test_report_meets_deadlines(self, tandem4):
        rep = DecomposedAnalysis().analyze(tandem4)
        assert rep.meets_deadlines(tandem4)  # all deadlines are inf

    def test_report_worst_empty_raises(self):
        rep = DelayReport("x", {})
        with pytest.raises(ValueError):
            rep.worst()
