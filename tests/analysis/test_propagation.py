"""Unit tests for the shared topological propagation sweep."""

import pytest

from repro.analysis.propagation import analyze_server, propagate
from repro.curves.token_bucket import TokenBucket
from repro.errors import InstabilityError
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Discipline, Network, ServerSpec


TB = TokenBucket(1.0, 0.2, peak=1.0)


class TestPropagate:
    def test_entry_curve_is_source_constraint(self, tandem4):
        prop = propagate(tandem4)
        src = tandem4.flow(CONNECTION0).bucket.constraint_curve()
        got = prop.curve_at[(CONNECTION0, 1)]
        for t in [0.0, 1.0, 5.0]:
            assert got(t) == pytest.approx(src(t))

    def test_curves_inflate_downstream(self, tandem4):
        prop = propagate(tandem4)
        c1 = prop.curve_at[(CONNECTION0, 1)]
        c3 = prop.curve_at[(CONNECTION0, 3)]
        assert c3(0.0) > c1(0.0)

    def test_capped_curves_below_uncapped(self, tandem4):
        plain = propagate(tandem4, capped=False)
        capped = propagate(tandem4, capped=True)
        for sid in (2, 3, 4):
            cu = plain.curve_at[(CONNECTION0, sid)]
            cc = capped.curve_at[(CONNECTION0, sid)]
            for t in [0.0, 0.5, 2.0]:
                assert cc(t) <= cu(t) + 1e-9

    def test_local_delays_recorded_everywhere(self, tandem4):
        prop = propagate(tandem4)
        assert set(prop.local) == {1, 2, 3, 4}

    def test_flow_delay_at(self, tandem4):
        prop = propagate(tandem4)
        rho = 0.6 / 4.0
        assert prop.flow_delay_at(CONNECTION0, 1) == \
            pytest.approx(2.0 / (1.0 - rho))

    def test_unstable_network_raises(self):
        heavy = TokenBucket(1.0, 0.6)
        net = Network([ServerSpec("s")],
                      [Flow("a", heavy, ["s"]), Flow("b", heavy, ["s"])])
        with pytest.raises(InstabilityError):
            propagate(net)

    def test_capped_local_delays_never_worse(self, tandem4):
        plain = propagate(tandem4, capped=False)
        capped = propagate(tandem4, capped=True)
        for sid in (1, 2, 3, 4):
            assert capped.local[sid].max_delay <= \
                plain.local[sid].max_delay + 1e-9


class TestAnalyzeServerDispatch:
    def _net(self, discipline):
        servers = [ServerSpec("s", 1.0, discipline)]
        flows = [Flow("a", TB, ["s"], priority=0),
                 Flow("b", TB, ["s"], priority=1)]
        return Network(servers, flows)

    def test_fifo_dispatch(self):
        net = self._net(Discipline.FIFO)
        curves = {"a": TB.constraint_curve(), "b": TB.constraint_curve()}
        la = analyze_server(net, "s", curves)
        assert la.delay_by_flow["a"] == la.delay_by_flow["b"]

    def test_sp_dispatch(self):
        net = self._net(Discipline.STATIC_PRIORITY)
        curves = {"a": TB.constraint_curve(), "b": TB.constraint_curve()}
        la = analyze_server(net, "s", curves)
        assert la.delay_by_flow["a"] < la.delay_by_flow["b"]

    def test_gr_dispatch(self):
        net = self._net(Discipline.GUARANTEED_RATE)
        curves = {"a": TB.constraint_curve(), "b": TB.constraint_curve()}
        la = analyze_server(net, "s", curves)
        assert la.delay_by_flow["a"] == pytest.approx(
            la.delay_by_flow["b"])
