"""Unit tests for the feedback (fixed-point) analysis of cyclic networks."""

import math

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.feedback import FeedbackAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import AnalysisError, TopologyError
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec
from repro.sim.simulator import simulate_greedy


def ring(rho=0.1, sigma=1.0, n=3):
    """n servers in a ring: flow k enters at server k and also crosses
    server (k+1) mod n — the server graph is a directed cycle."""
    servers = [ServerSpec(k) for k in range(n)]
    tb = TokenBucket(sigma, rho, peak=1.0)
    flows = [Flow(f"f{k}", tb, [k, (k + 1) % n]) for k in range(n)]
    return Network(servers, flows, allow_cycles=True)


class TestNetworkCycleSupport:
    def test_cycles_rejected_by_default(self):
        with pytest.raises(TopologyError):
            ring().without_flow  # noqa: B018 - construction itself raises
            Network([ServerSpec(0), ServerSpec(1)],
                    [Flow("a", TokenBucket(1, 0.1), [0, 1]),
                     Flow("b", TokenBucket(1, 0.1), [1, 0])])

    def test_allow_cycles_flag(self):
        net = ring()
        assert not net.is_feedforward

    def test_topological_sort_refuses_cycles(self):
        with pytest.raises(TopologyError):
            ring().topological_servers()

    def test_feedforward_property_true_on_tandem(self, tandem4):
        assert tandem4.is_feedforward

    def test_with_flow_preserves_allow_cycles(self):
        net = ring()
        tb = TokenBucket(0.5, 0.05, peak=1.0)
        net2 = net.with_flow(Flow("extra", tb, [0]))
        assert not net2.is_feedforward


class TestOnFeedForward:
    def test_matches_decomposed_capped(self, tandem4):
        fb = FeedbackAnalysis(capped_propagation=True).analyze(tandem4)
        dec = DecomposedAnalysis(capped_propagation=True) \
            .analyze(tandem4)
        for name in tandem4.flows:
            assert fb.delay_of(name) == \
                pytest.approx(dec.delay_of(name), rel=1e-6)

    def test_matches_decomposed_uncapped(self, tandem4):
        fb = FeedbackAnalysis(capped_propagation=False).analyze(tandem4)
        dec = DecomposedAnalysis().analyze(tandem4)
        assert fb.delay_of(CONNECTION0) == \
            pytest.approx(dec.delay_of(CONNECTION0), rel=1e-6)

    def test_converges_quickly_on_dag(self, tandem4):
        rep = FeedbackAnalysis().analyze(tandem4)
        assert rep.meta["converged"]
        assert rep.meta["iterations"] <= 8


class TestOnRing:
    def test_light_ring_converges(self):
        rep = FeedbackAnalysis().analyze(ring(rho=0.1))
        assert rep.meta["converged"]
        assert rep.all_finite()
        # symmetric ring: all flows identical
        vals = {round(fd.total, 9) for fd in rep.delays.values()}
        assert len(vals) == 1

    def test_ring_bound_sound_vs_simulation(self):
        net = ring(rho=0.2)
        rep = FeedbackAnalysis().analyze(net)
        assert rep.meta["converged"]
        sim = simulate_greedy(net, horizon=100.0, packet_size=0.05)
        for name in net.flows:
            assert sim.max_delay(name) <= rep.delay_of(name) + 0.1 + 1e-9

    def test_heavy_ring_may_not_converge(self):
        # very bursty, near-saturation ring without capping: the
        # burstiness iteration gains exceed 1 and the analysis must
        # refuse to certify (infinite bounds), not loop forever
        net = ring(rho=0.45, sigma=5.0)
        rep = FeedbackAnalysis(max_iterations=40,
                               capped_propagation=False).analyze(net)
        if not rep.meta["converged"]:
            assert all(math.isinf(fd.total)
                       for fd in rep.delays.values())

    def test_capping_enlarges_certified_region(self):
        # at the same load, capped propagation converges where uncapped
        # may not (or converges to a tighter fixed point)
        net = ring(rho=0.3, sigma=3.0)
        capped = FeedbackAnalysis(capped_propagation=True).analyze(net)
        uncapped = FeedbackAnalysis(capped_propagation=False,
                                    max_iterations=200).analyze(net)
        assert capped.meta["converged"]
        if uncapped.meta["converged"]:
            assert capped.delay_of("f0") <= \
                uncapped.delay_of("f0") + 1e-9

    def test_larger_ring(self):
        rep = FeedbackAnalysis().analyze(ring(rho=0.15, n=6))
        assert rep.meta["converged"] and rep.all_finite()


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(AnalysisError):
            FeedbackAnalysis(max_iterations=0)
        with pytest.raises(AnalysisError):
            FeedbackAnalysis(tolerance=0.0)
