"""Unit tests for the diagnosis/provisioning tools."""

import math

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.diagnosis import (
    bottlenecks,
    deadline_slack,
    max_admissible_rate,
)
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import AnalysisError
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Network, ServerSpec


class TestBottlenecks:
    def test_ranked_and_shares_sum_to_one(self, tandem4):
        ranked = bottlenecks(DecomposedAnalysis(), tandem4, CONNECTION0)
        assert len(ranked) == 4
        assert all(a.delay >= b.delay
                   for a, b in zip(ranked, ranked[1:]))
        assert sum(b.share for b in ranked) == pytest.approx(1.0)

    def test_downstream_hops_dominate_decomposed(self, tandem4):
        # burst inflation makes later hops the bottleneck
        ranked = bottlenecks(DecomposedAnalysis(), tandem4, CONNECTION0)
        assert ranked[0].element == 4
        assert ranked[-1].element == 1

    def test_integrated_uses_subsystem_elements(self, tandem4):
        ranked = bottlenecks(IntegratedAnalysis(), tandem4, CONNECTION0)
        assert {b.element for b in ranked} == {(1, 2), (3, 4)}

    def test_service_curve_rejected(self, tandem4):
        with pytest.raises(AnalysisError):
            bottlenecks(ServiceCurveAnalysis(), tandem4, CONNECTION0)


class TestDeadlineSlack:
    def test_infinite_for_best_effort(self, tandem4):
        slack = deadline_slack(IntegratedAnalysis(), tandem4)
        assert all(math.isinf(v) for v in slack.values())

    def test_negative_when_uncertifiable(self):
        tb = TokenBucket(1.0, 0.3)
        net = Network(
            [ServerSpec(1)],
            [Flow("tight", tb, (1,), deadline=0.5),
             Flow("ok", tb, (1,), deadline=50.0)])
        slack = deadline_slack(DecomposedAnalysis(), net)
        assert slack["tight"] < 0 < slack["ok"]


class TestMaxAdmissibleRate:
    def test_bounded_by_headroom(self, tandem4):
        rate = max_admissible_rate(
            IntegratedAnalysis(), tandem4, path=(1, 2, 3, 4),
            deadline=1000.0)
        # interior servers at U=0.6 leave 0.4 headroom
        assert 0.0 < rate < 0.4

    def test_tight_deadline_reduces_rate(self, tandem4):
        loose = max_admissible_rate(IntegratedAnalysis(), tandem4,
                                    (1, 2, 3, 4), deadline=1000.0)
        tight = max_admissible_rate(IntegratedAnalysis(), tandem4,
                                    (1, 2, 3, 4), deadline=14.0)
        assert tight <= loose + 1e-9

    def test_impossible_deadline_gives_zero(self, tandem4):
        rate = max_admissible_rate(IntegratedAnalysis(), tandem4,
                                   (1, 2, 3, 4), deadline=1e-3)
        assert rate == 0.0

    def test_found_rate_is_actually_feasible(self, tandem4):
        deadline = 16.0
        rate = max_admissible_rate(IntegratedAnalysis(), tandem4,
                                   (1, 2, 3, 4), deadline=deadline)
        assert rate > 0
        flow = Flow("probe", TokenBucket(1.0, rate, peak=1.0),
                    (1, 2, 3, 4), deadline=deadline)
        report = IntegratedAnalysis().analyze(tandem4.with_flow(flow))
        assert report.delay_of("probe") <= deadline + 1e-6

    def test_invalid_deadline(self, tandem4):
        with pytest.raises(AnalysisError):
            max_admissible_rate(IntegratedAnalysis(), tandem4,
                                (1, 2), deadline=math.inf)

    def test_saturated_path_gives_zero(self):
        tb = TokenBucket(1.0, 0.5)
        net = Network([ServerSpec(1)],
                      [Flow("a", tb, (1,)), Flow("b", TokenBucket(1.0, 0.499), (1,))])
        rate = max_admissible_rate(DecomposedAnalysis(), net, (1,),
                                   deadline=100.0)
        assert rate == pytest.approx(0.0, abs=1e-3)
