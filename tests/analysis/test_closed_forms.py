"""Cross-validation of the tandem closed forms against the engines."""

import math

import pytest

from repro.analysis.closed_forms import (
    decomposed_delay,
    decomposed_local_delays,
    service_curve_delay,
    tandem_closed_forms,
)
from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.network.tandem import CONNECTION0, build_tandem


CONFIGS = [(n, u) for n in (1, 2, 3, 5, 8) for u in (0.1, 0.45, 0.85)]


class TestDecomposedClosedForm:
    def test_e1_matches_paper(self):
        # E_1 = 2 sigma / (1 - rho), the paper's legible formula
        rho = 0.6 / 4
        e = decomposed_local_delays(3, 0.6)
        assert e[0] == pytest.approx(2.0 / (1.0 - rho))

    @pytest.mark.parametrize("n,u", CONFIGS)
    def test_total_matches_engine(self, n, u):
        engine = DecomposedAnalysis().analyze(build_tandem(n, u)) \
            .delay_of(CONNECTION0)
        assert decomposed_delay(n, u) == pytest.approx(engine, rel=1e-9)

    @pytest.mark.parametrize("n,u", [(4, 0.3), (4, 0.8)])
    def test_per_server_terms_match_engine(self, n, u):
        rep = DecomposedAnalysis().analyze(build_tandem(n, u))
        engine = dict(rep.delays[CONNECTION0].contributions)
        closed = decomposed_local_delays(n, u)
        for k in range(1, n + 1):
            assert closed[k - 1] == pytest.approx(engine[k], rel=1e-9)

    def test_sigma_scales_linearly(self):
        assert decomposed_delay(3, 0.5, sigma=2.0) == \
            pytest.approx(2.0 * decomposed_delay(3, 0.5, sigma=1.0))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            decomposed_delay(0, 0.5)
        with pytest.raises(ValueError):
            decomposed_delay(2, 1.5)
        with pytest.raises(ValueError):
            decomposed_delay(2, 0.5, sigma=-1.0)


class TestServiceCurveClosedForm:
    @pytest.mark.parametrize("n,u", CONFIGS)
    def test_matches_engine(self, n, u):
        engine = ServiceCurveAnalysis().analyze(build_tandem(n, u)) \
            .delay_of(CONNECTION0)
        assert service_curve_delay(n, u) == pytest.approx(engine, rel=1e-9)

    def test_single_hop(self):
        engine = ServiceCurveAnalysis().analyze(build_tandem(1, 0.5)) \
            .delay_of(CONNECTION0)
        assert service_curve_delay(1, 0.5) == pytest.approx(engine)

    def test_blows_up_when_cross_saturates(self):
        # 3 rho >= 1 requires U >= 4/3, unreachable through build_tandem;
        # call the closed form directly via a large sigma-normalized rho
        assert math.isfinite(service_curve_delay(4, 0.99))


class TestBundle:
    def test_tandem_closed_forms_consistent(self):
        cf = tandem_closed_forms(4, 0.6)
        assert cf.decomposed == pytest.approx(sum(cf.local_delays))
        assert cf.n_hops == 4 and cf.utilization == 0.6
