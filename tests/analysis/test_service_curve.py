"""Unit tests for Algorithm Service Curve (induced FIFO curves)."""

import math

import pytest

from repro.analysis.service_curve import (
    ServiceCurveAnalysis,
    induced_fifo_service_curve,
)
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Discipline, Network, ServerSpec


class TestInducedCurve:
    def test_no_cross_traffic_full_line(self):
        beta = induced_fifo_service_curve(1.0, P.zero())
        assert beta == P.line(1.0)

    def test_affine_cross(self):
        beta = induced_fifo_service_curve(1.0, P.affine(1.0, 0.5))
        assert beta(2.0) == pytest.approx(0.0)
        assert beta(4.0) == pytest.approx(1.0)  # 0.5*(4-2)

    def test_saturated_cross_returns_none(self):
        assert induced_fifo_service_curve(1.0, P.affine(1.0, 1.0)) is None

    def test_is_convex_nondecreasing(self):
        cross = (TokenBucket(1.0, 0.2, peak=1.0).constraint_curve() * 2.0)
        beta = induced_fifo_service_curve(1.0, cross)
        assert beta.is_convex() and beta.is_nondecreasing()


class TestOnTandem:
    def test_single_contribution_spans_path(self, tandem4):
        rep = ServiceCurveAnalysis().analyze(tandem4)
        fd = rep.delays[CONNECTION0]
        assert len(fd.contributions) == 1
        assert fd.contributions[0][0] == (1, 2, 3, 4)

    def test_worse_than_decomposed_at_high_load(self):
        from repro.analysis.decomposed import DecomposedAnalysis
        net = build_tandem(4, 0.9)
        sc = ServiceCurveAnalysis().analyze(net).delay_of(CONNECTION0)
        dec = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
        assert sc > dec

    def test_better_than_decomposed_large_net_low_load(self):
        # the paper's Figure-4 nuance
        from repro.analysis.decomposed import DecomposedAnalysis
        net = build_tandem(8, 0.2)
        sc = ServiceCurveAnalysis().analyze(net).delay_of(CONNECTION0)
        dec = DecomposedAnalysis().analyze(net).delay_of(CONNECTION0)
        assert sc < dec

    def test_monotone_in_load(self):
        d = [ServiceCurveAnalysis().analyze(build_tandem(3, u))
             .delay_of(CONNECTION0) for u in (0.2, 0.5, 0.8)]
        assert d[0] < d[1] < d[2]

    def test_network_service_curves_in_meta(self, tandem4):
        rep = ServiceCurveAnalysis().analyze(tandem4)
        assert CONNECTION0 in rep.meta["network_service_curves"]


class TestEdgeCases:
    def test_saturated_cross_gives_infinite_bound(self):
        # cross traffic rate at the server equals capacity
        tb_big = TokenBucket(1.0, 0.5)
        tb_small = TokenBucket(1.0, 0.25)
        net = Network(
            [ServerSpec("s", 1.0)],
            [Flow("victim", tb_small, ["s"]),
             Flow("hog1", tb_big, ["s"]),
             Flow("hog2", TokenBucket(1.0, 0.2), ["s"])],
        )
        # total 0.95 < 1 stable, but cross for victim = 0.7 < 1: finite
        rep = ServiceCurveAnalysis().analyze(net)
        assert math.isfinite(rep.delay_of("victim"))

    def test_gr_servers_use_rate_latency(self):
        tb = TokenBucket(1.0, 0.25)
        net = Network(
            [ServerSpec("s", 1.0, Discipline.GUARANTEED_RATE)],
            [Flow("a", tb, ["s"]), Flow("b", tb, ["s"])],
        )
        rep = ServiceCurveAnalysis().analyze(net)
        # per-flow rate-latency(rho, 0): delay sigma/rho = 4
        assert rep.delay_of("a") == pytest.approx(4.0)
