"""Unit tests for the sampled (grid) curve kernels."""

import math

import numpy as np
import pytest

from repro.curves import numeric
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.utils.grid import TimeGrid, make_grid


class TestGrid:
    def test_dt_and_times(self):
        g = TimeGrid(10.0, 11)
        assert g.dt == 1.0
        assert np.allclose(g.times, np.arange(11.0))

    def test_index_of(self):
        g = TimeGrid(10.0, 11)
        assert g.index_of(-1.0) == 0
        assert g.index_of(3.5) == 3
        assert g.index_of(99.0) == 10

    def test_refined(self):
        g = TimeGrid(10.0, 11).refined(2)
        assert g.n == 21 and g.dt == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            TimeGrid(0.0, 10)
        with pytest.raises(ValueError):
            TimeGrid(1.0, 1)
        with pytest.raises(ValueError):
            TimeGrid(1.0, 10).refined(0)

    def test_make_grid(self):
        g = make_grid(5.0, 101)
        assert g.horizon == 5.0 and g.n == 101


class TestSampleRoundtrip:
    def test_sample_matches_eval(self):
        g = make_grid(10.0, 101)
        f = P.affine(1.0, 0.5)
        assert np.allclose(numeric.sample(f, g), f(g.times))

    def test_to_curve_roundtrip(self):
        g = make_grid(10.0, 101)
        f = P.rate_latency(1.0, 2.0)
        back = numeric.to_curve(numeric.sample(f, g), g)
        for t in [0.0, 2.0, 5.0, 9.0]:
            assert back(t) == pytest.approx(f(t), abs=1e-9)

    def test_to_curve_validates_shape(self):
        g = make_grid(10.0, 101)
        with pytest.raises(ValueError):
            numeric.to_curve(np.zeros(50), g)

    def test_to_curve_clamps_noise_negative_final_slope(self):
        # regression: float cancellation in the last cell of an
        # otherwise-nondecreasing sample vector used to mint a curve
        # that decreases forever past the horizon
        g = make_grid(10.0, 101)
        v = numeric.sample(P.affine(1.0, 0.5), g)
        v[-1] = v[-2] - 1e-12  # cancellation noise, below tolerance
        back = numeric.to_curve(v, g)
        assert back.final_slope == 0.0
        assert back(1e6) >= back(g.horizon)

    def test_to_curve_keeps_genuine_negative_final_slope(self):
        # a genuinely decreasing tail is preserved — the clamp only
        # fires for sub-tolerance noise on nondecreasing samples
        g = make_grid(10.0, 101)
        v = 5.0 - 0.5 * g.times
        back = numeric.to_curve(v, g)
        assert back.final_slope == pytest.approx(-0.5)


class TestGridConvolve:
    def test_matches_brute_force(self):
        g = make_grid(8.0, 65)
        f = numeric.sample(P.affine(1.0, 0.5), g)
        h = numeric.sample(P.rate_latency(1.0, 2.0), g)
        out = numeric.grid_convolve(f, h)
        n = g.n
        for k in [0, 10, 30, 64]:
            brute = min(f[i] + h[k - i] for i in range(k + 1))
            assert out[k] == pytest.approx(brute)

    def test_identity_with_zero_at_origin(self):
        # convolving with the "infinite at >0" element is not
        # representable; instead check f ⊗ f <= f + f(0)
        g = make_grid(5.0, 51)
        f = numeric.sample(P.affine(2.0, 0.1), g)
        out = numeric.grid_convolve(f, f)
        assert np.all(out <= f + f[0] + 1e-12)

    def test_commutative(self):
        g = make_grid(5.0, 41)
        f = numeric.sample(P.affine(1.0, 0.3), g)
        h = numeric.sample(P.rate_latency(0.7, 1.0), g)
        assert np.allclose(numeric.grid_convolve(f, h),
                           numeric.grid_convolve(h, f))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            numeric.grid_convolve(np.zeros(4), np.zeros(5))


class TestGridDeconvolve:
    def test_token_bucket_through_rate_latency(self):
        # (sigma + rho t) ⊘ RL(R,T) = sigma + rho T + rho t (for R>=rho)
        g = make_grid(40.0, 4001)
        a = numeric.sample(P.affine(1.0, 0.25), g)
        b = numeric.sample(P.rate_latency(1.0, 2.0), g)
        out = numeric.grid_deconvolve(a, b)
        expect = 1.0 + 0.25 * 2.0
        assert out[0] == pytest.approx(expect, abs=1e-2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            numeric.grid_deconvolve(np.zeros(4), np.zeros(5))


class TestGridInverseAndDeviations:
    def test_pseudo_inverse_linear(self):
        g = make_grid(10.0, 101)
        v = numeric.sample(P.line(2.0), g)
        out = numeric.grid_pseudo_inverse(v, g, np.array([4.0, 0.0, 20.0]))
        assert np.allclose(out, [2.0, 0.0, 10.0])

    def test_pseudo_inverse_unreachable(self):
        g = make_grid(10.0, 101)
        v = numeric.sample(P.constant(1.0), g)
        out = numeric.grid_pseudo_inverse(v, g, np.array([2.0]))
        assert math.isinf(out[0])

    def test_hdev_matches_exact(self):
        g = make_grid(30.0, 3001)
        a = P.affine(1.0, 0.2)
        b = P.rate_latency(0.5, 2.0)
        exact = a.horizontal_deviation(b)
        approx = numeric.grid_hdev(numeric.sample(a, g),
                                   numeric.sample(b, g), g)
        assert approx == pytest.approx(exact, abs=0.05)

    def test_vdev_matches_exact(self):
        g = make_grid(30.0, 3001)
        a = P.affine(2.0, 0.2)
        b = P.line(1.0)
        assert numeric.grid_vdev(numeric.sample(a, g),
                                 numeric.sample(b, g)) == pytest.approx(2.0)
