"""Unit tests for the functional curve-operation façade."""

import math

import numpy as np
import pytest

from repro.curves.kernels import use_kernel
from repro.curves.operations import (
    busy_period,
    convolve,
    convolve_all,
    deconvolve,
    hdev,
    vdev,
)
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.errors import CurveError


class TestConvolveFacade:
    def test_exact_path_for_convex(self):
        c = convolve(P.rate_latency(1.0, 1.0), P.rate_latency(2.0, 2.0))
        assert c(3.0) == 0.0 and c(4.0) == pytest.approx(1.0)

    def test_exact_path_for_concave(self):
        c = convolve(P.affine(1.0, 0.5), P.affine(2.0, 0.2))
        assert c(10.0) == pytest.approx(min(1 + 5 + 2, 2 + 2 + 1))

    def test_fallback_for_mixed(self):
        concave = P.line(1.0).minimum(P.affine(1.0, 0.2))
        convex = P.rate_latency(1.0, 1.0)
        c = convolve(concave, convex, horizon=20.0)
        ss = np.linspace(0, 5, 2001)
        brute = min(concave(s) + convex(5.0 - s) for s in ss)
        assert c(5.0) == pytest.approx(brute, abs=0.02)

    def test_convolve_all(self):
        curves = [P.rate_latency(1.0, 1.0)] * 3
        c = convolve_all(curves)
        assert c(3.0) == 0.0 and c(4.0) == pytest.approx(1.0)

    def test_convolve_all_empty_raises(self):
        with pytest.raises(CurveError):
            convolve_all([])

    def test_convolve_all_single(self):
        f = P.line(1.0)
        assert convolve_all([f]) is f

    def test_convolve_all_rederives_horizon_per_fold(self):
        """Regression: a caller-supplied horizon used to be reused
        verbatim for *every* pairwise sampled fallback, so late folds
        of a long left fold were truncated to the first fold's window
        and their extrapolated tails went wrong far from the origin.
        The horizon is now a minimum: each fold samples at least its
        own characteristic window."""
        concave = P.line(1.0).minimum(P.affine(1.0, 0.2))
        convex = P.rate_latency(0.9, 3.0)
        late = P.rate_latency(0.15, 30.0)  # structure past the window
        t = 60.0
        ts = np.linspace(0.0, t, 1201)
        f, g, h = (c.sample(ts) for c in (concave, convex, late))
        fg = np.array([np.min(f[:i + 1] + g[i::-1])
                       for i in range(len(ts))])
        brute = float(np.min(fg + h[::-1]))  # ((f*g)*h)(t) on the grid
        assert brute > 1.0  # the true fold is far from degenerate

        with use_kernel("grid"):
            fixed = convolve_all([concave, convex, late], horizon=8.0)
            assert fixed(t) == pytest.approx(brute, abs=0.1)
            # the old behavior — every fold clamped to the caller's 8.0
            # window — saw only the zero prefix of the 30-latency curve
            # and extrapolated the whole fold to 0 (an unsound bound)
            old = convolve(convolve(concave, convex, horizon=8.0),
                           late, horizon=8.0)
            assert old(t) == 0.0


class TestDeconvolve:
    """Pins the *grid* backend's pad/splice semantics, so every test
    activates ``kernel="grid"`` explicitly (the default exact kernel
    has no pad, no splice and no horizon)."""

    @pytest.fixture(autouse=True)
    def _grid_kernel(self):
        with use_kernel("grid"):
            yield

    def test_output_burstiness(self):
        # affine ⊘ rate-latency: burst inflated by rho*T
        out = deconvolve(P.affine(1.0, 0.25), P.rate_latency(1.0, 2.0),
                         horizon=50.0)
        assert out(0.0) == pytest.approx(1.5, abs=0.05)
        assert out.final_slope == pytest.approx(0.25, abs=0.01)

    def test_sampled_result_is_sound_upper_envelope(self):
        """The sampled sup sits up to ``dt * slope`` *below* the exact
        deconvolution — unsound for an output-traffic bound.  The
        resolution-derived pad must lift the whole result to at least
        the closed form, while staying a tight envelope."""
        out = deconvolve(P.affine(1.0, 0.25), P.rate_latency(1.0, 2.0),
                         horizon=50.0)
        exact = P.affine(1.5, 0.25)  # sigma + rho*T, slope rho
        ts = np.linspace(0.0, 120.0, 601)  # well past the 75% splice
        gap = out.sample(ts) - exact.sample(ts)
        assert np.all(gap >= -1e-9)
        assert float(np.max(gap)) < 0.05

    def test_tail_splice_is_continuous(self):
        """The grafted long-term-rate tail must join the kept prefix
        without a jump: finite differences across the splice stay
        bounded by the curve's own max slope."""
        f = P.line(1.0).minimum(P.affine(1.0, 0.2))
        g = P.rate_latency(1.0, 1.0)
        out = deconvolve(f, g, horizon=20.0)
        assert out.final_slope == pytest.approx(0.2, abs=1e-9)
        ts = np.linspace(10.0, 25.0, 3001)  # straddles 0.75 * 20
        dv = np.abs(np.diff(out.sample(ts)))
        max_slope = float(np.max(np.abs(out.slopes())))
        assert np.all(dv <= max_slope * (ts[1] - ts[0]) + 1e-9)


class TestDeviationFacade:
    def test_hdev(self):
        assert hdev(P.affine(1.0, 0.2), P.line(1.0)) == pytest.approx(1.0)

    def test_vdev(self):
        assert vdev(P.affine(1.0, 0.2), P.line(1.0)) == pytest.approx(1.0)


class TestBusyPeriod:
    def test_affine(self):
        # sigma + rho t = C t  ->  t = sigma/(C - rho)
        assert busy_period(P.affine(1.0, 0.5), 1.0) == pytest.approx(2.0)

    def test_peak_limited_aggregate(self):
        b = P.line(1.0).minimum(P.affine(1.0, 0.2))
        assert busy_period(b * 3.0, 1.0) == pytest.approx(7.5)

    def test_underload_zero(self):
        assert busy_period(P.line(0.2), 1.0) == 0.0

    def test_overload_inf(self):
        assert busy_period(P.affine(1.0, 2.0), 1.0) == math.inf

    def test_invalid_capacity(self):
        with pytest.raises(CurveError):
            busy_period(P.line(0.5), 0.0)

    def test_scales_with_capacity(self):
        b1 = busy_period(P.affine(1.0, 0.5), 1.0)
        b2 = busy_period(P.affine(2.0, 1.0), 2.0)
        assert b1 == pytest.approx(b2)


class TestAutoGridRateAware:
    """The fallback horizon must track rates, not just breakpoints.

    The previous formula was ``max(1.0, 4 * last_breakpoint)``: a
    near-degenerate curve such as ``affine(sigma, rho)`` — whose only
    breakpoint sits at 0 — always received the minimal 1.0 horizon no
    matter how slowly its tail accumulates.  The horizon now covers the
    curve's characteristic time ``x[-1] + y[-1] / final_slope`` (the
    tail's value-doubling scale) times the same safety factor.
    """

    def test_degenerate_affine_is_rate_aware(self):
        from repro.curves.operations import _auto_grid
        grid = _auto_grid(P.affine(1.0, 0.2))
        # 4 * (0 + 1.0 / 0.2); the old formula returned 1.0
        assert grid.horizon == pytest.approx(20.0)

    def test_breakpoint_driven_horizon_unchanged(self):
        from repro.curves.operations import _auto_grid
        flat_tail = P([0.0, 5.0], [0.0, 5.0], 0.0)
        # final slope 0: characteristic time is the last breakpoint,
        # exactly as before
        assert _auto_grid(flat_tail).horizon == pytest.approx(20.0)

    def test_constant_curve_keeps_floor(self):
        from repro.curves.operations import _auto_grid
        assert _auto_grid(P.constant(3.0)).horizon == 1.0

    def test_widest_curve_wins(self):
        from repro.curves.operations import _auto_grid
        a = P.affine(4.0, 0.25)            # characteristic time 16
        b = P.rate_latency(0.5, 0.2)       # characteristic time 0.2
        assert _auto_grid(a, b).horizon == pytest.approx(64.0)

    def test_sampled_fallback_bound_changes(self):
        """Regression pin: the default-horizon deconvolution of
        near-degenerate operands no longer equals the old 1.0-horizon
        result (the sampled bound genuinely moved)."""
        f = P.affine(4.0, 0.25)
        g = P.rate_latency(0.5, 0.2)
        with use_kernel("grid"):
            # old formula: max(1.0, 4 * 0.2) == 1.0
            old = deconvolve(f, g, horizon=1.0)
            new = deconvolve(f, g)
        assert old != new
        exact_burst = 4.0 + 0.25 * 0.2  # sup at j = latency
        assert new(0.0) == pytest.approx(exact_burst, abs=0.01)
        assert new.final_slope == pytest.approx(0.25, abs=0.01)
