"""Unit tests for the functional curve-operation façade."""

import math

import numpy as np
import pytest

from repro.curves.operations import (
    busy_period,
    convolve,
    convolve_all,
    deconvolve,
    hdev,
    vdev,
)
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.errors import CurveError


class TestConvolveFacade:
    def test_exact_path_for_convex(self):
        c = convolve(P.rate_latency(1.0, 1.0), P.rate_latency(2.0, 2.0))
        assert c(3.0) == 0.0 and c(4.0) == pytest.approx(1.0)

    def test_exact_path_for_concave(self):
        c = convolve(P.affine(1.0, 0.5), P.affine(2.0, 0.2))
        assert c(10.0) == pytest.approx(min(1 + 5 + 2, 2 + 2 + 1))

    def test_fallback_for_mixed(self):
        concave = P.line(1.0).minimum(P.affine(1.0, 0.2))
        convex = P.rate_latency(1.0, 1.0)
        c = convolve(concave, convex, horizon=20.0)
        ss = np.linspace(0, 5, 2001)
        brute = min(concave(s) + convex(5.0 - s) for s in ss)
        assert c(5.0) == pytest.approx(brute, abs=0.02)

    def test_convolve_all(self):
        curves = [P.rate_latency(1.0, 1.0)] * 3
        c = convolve_all(curves)
        assert c(3.0) == 0.0 and c(4.0) == pytest.approx(1.0)

    def test_convolve_all_empty_raises(self):
        with pytest.raises(CurveError):
            convolve_all([])

    def test_convolve_all_single(self):
        f = P.line(1.0)
        assert convolve_all([f]) is f


class TestDeconvolve:
    def test_output_burstiness(self):
        # affine ⊘ rate-latency: burst inflated by rho*T
        out = deconvolve(P.affine(1.0, 0.25), P.rate_latency(1.0, 2.0),
                         horizon=50.0)
        assert out(0.0) == pytest.approx(1.5, abs=0.05)
        assert out.final_slope == pytest.approx(0.25, abs=0.01)


class TestDeviationFacade:
    def test_hdev(self):
        assert hdev(P.affine(1.0, 0.2), P.line(1.0)) == pytest.approx(1.0)

    def test_vdev(self):
        assert vdev(P.affine(1.0, 0.2), P.line(1.0)) == pytest.approx(1.0)


class TestBusyPeriod:
    def test_affine(self):
        # sigma + rho t = C t  ->  t = sigma/(C - rho)
        assert busy_period(P.affine(1.0, 0.5), 1.0) == pytest.approx(2.0)

    def test_peak_limited_aggregate(self):
        b = P.line(1.0).minimum(P.affine(1.0, 0.2))
        assert busy_period(b * 3.0, 1.0) == pytest.approx(7.5)

    def test_underload_zero(self):
        assert busy_period(P.line(0.2), 1.0) == 0.0

    def test_overload_inf(self):
        assert busy_period(P.affine(1.0, 2.0), 1.0) == math.inf

    def test_invalid_capacity(self):
        with pytest.raises(CurveError):
            busy_period(P.line(0.5), 0.0)

    def test_scales_with_capacity(self):
        b1 = busy_period(P.affine(1.0, 0.5), 1.0)
        b2 = busy_period(P.affine(2.0, 1.0), 2.0)
        assert b1 == pytest.approx(b2)
