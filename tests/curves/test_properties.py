"""Property-based tests (hypothesis) for the curve algebra.

These pin down the algebraic laws every analysis relies on:
commutativity/monotonicity of min-plus convolution, Galois connection of
the pseudo-inverse, soundness of deviations, and consistency between the
exact and sampled kernels.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.curves import numeric
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket
from repro.utils.grid import make_grid

# -- strategies --------------------------------------------------------

finite = st.floats(min_value=0.0, max_value=50.0, allow_nan=False,
                   allow_infinity=False)
rate = st.floats(min_value=0.01, max_value=5.0, allow_nan=False,
                 allow_infinity=False)


@st.composite
def token_buckets(draw):
    sigma = draw(st.floats(min_value=0.0, max_value=10.0))
    rho = draw(st.floats(min_value=0.01, max_value=2.0))
    use_peak = draw(st.booleans())
    if use_peak:
        peak = draw(st.floats(min_value=rho, max_value=rho + 5.0))
        return TokenBucket(sigma, rho, max(peak, rho))
    return TokenBucket(sigma, rho)


@st.composite
def concave_curves(draw):
    """A concave nondecreasing curve built as min of affine pieces."""
    n = draw(st.integers(min_value=1, max_value=4))
    pieces = []
    last_rate = 10.0
    for _ in range(n):
        burst = draw(st.floats(min_value=0.0, max_value=20.0))
        r = draw(st.floats(min_value=0.01, max_value=last_rate))
        pieces.append(P.affine(burst, r))
    acc = pieces[0]
    for p in pieces[1:]:
        acc = acc.minimum(p)
    return acc


@st.composite
def convex_curves(draw):
    """A convex service curve: max of rate-latency pieces through 0."""
    n = draw(st.integers(min_value=1, max_value=3))
    acc = P.rate_latency(draw(rate), draw(st.floats(0.0, 10.0)))
    for _ in range(n - 1):
        acc = acc.maximum(
            P.rate_latency(draw(rate), draw(st.floats(0.0, 10.0))))
    return acc


# -- properties --------------------------------------------------------

class TestEvaluationProperties:
    @given(concave_curves(), st.lists(finite, min_size=1, max_size=10))
    def test_concave_curves_nondecreasing(self, f, ts):
        ts = sorted(ts)
        vals = [f(t) for t in ts]
        assert all(a <= b + 1e-9 for a, b in zip(vals, vals[1:]))

    @given(token_buckets(), finite, finite)
    def test_constraint_curve_subadditive_increments(self, tb, t, dt):
        # b(t + dt) - b(t) <= b(dt): token-bucket curves are subadditive
        b = tb.constraint_curve()
        assert b(t + dt) - b(t) <= b(dt) + 1e-6 * max(1.0, b(dt))


class TestArithmeticProperties:
    @given(concave_curves(), concave_curves(), finite)
    def test_addition_pointwise(self, f, g, t):
        assert (f + g)(t) == pytest.approx(f(t) + g(t), rel=1e-9, abs=1e-9)

    @given(concave_curves(), concave_curves(), finite)
    def test_min_max_pointwise(self, f, g, t):
        assert f.minimum(g)(t) == pytest.approx(min(f(t), g(t)), abs=1e-6)
        assert f.maximum(g)(t) == pytest.approx(max(f(t), g(t)), abs=1e-6)

    @given(concave_curves(), finite)
    def test_simplified_is_equivalent(self, f, t):
        assert f.simplified()(t) == pytest.approx(f(t), abs=1e-9)


class TestConvolutionProperties:
    @given(concave_curves(), concave_curves())
    def test_concave_convolve_commutative(self, f, g):
        a, b = f.convolve(g), g.convolve(f)
        for t in [0.0, 1.0, 7.3, 40.0]:
            assert a(t) == pytest.approx(b(t), rel=1e-9, abs=1e-9)

    @given(convex_curves(), convex_curves())
    def test_convex_convolve_commutative(self, f, g):
        a, b = f.convolve(g), g.convolve(f)
        for t in [0.0, 1.0, 7.3, 40.0]:
            assert a(t) == pytest.approx(b(t), rel=1e-7, abs=1e-7)

    @given(convex_curves(), convex_curves())
    def test_convolution_below_operands(self, f, g):
        c = f.convolve(g)
        for t in [0.0, 2.0, 11.0, 50.0]:
            assert c(t) <= min(f(t), g(t)) + 1e-9

    @settings(max_examples=25)
    @given(convex_curves(), convex_curves(),
           st.floats(min_value=0.1, max_value=30.0))
    def test_convex_convolution_matches_brute_force(self, f, g, t):
        c = f.convolve(g)
        ss = np.linspace(0.0, t, 600)
        brute = min(f(s) + g(t - s) for s in ss)
        # exact kernel must be <= any sampled decomposition and close to it
        assert c(t) <= brute + 1e-9
        assert c(t) == pytest.approx(brute, abs=0.3)


class TestPseudoInverseProperties:
    @given(concave_curves(), finite)
    def test_galois(self, f, v):
        t = f.pseudo_inverse(v)
        if math.isfinite(t):
            assert f(t) >= v - 1e-6 * max(1.0, v)

    @given(concave_curves(), finite)
    def test_inverse_of_value_below_t(self, f, t):
        # f^{-1}(f(t)) <= t for nondecreasing f
        assert f.pseudo_inverse(f(t)) <= t + 1e-6 * max(1.0, t)


class TestDeviationProperties:
    @given(concave_curves(), convex_curves())
    def test_hdev_certifies_service_shift(self, alpha, beta):
        d = alpha.horizontal_deviation(beta)
        if not math.isfinite(d):
            return
        # beta(t + d) >= alpha(t) at a spread of sample points
        for t in [0.0, 0.5, 3.0, 17.0, 60.0]:
            assert beta(t + d) >= alpha(t) - 1e-5 * max(1.0, alpha(t))

    @given(concave_curves(), convex_curves())
    def test_vdev_dominates_gap(self, alpha, beta):
        v = alpha.vertical_deviation(beta)
        if not math.isfinite(v):
            return
        for t in [0.0, 1.0, 9.0, 45.0]:
            assert alpha(t) - beta(t) <= v + 1e-6 * max(1.0, v)

    @given(concave_curves())
    def test_hdev_against_itself_like_line_zero(self, alpha):
        # service that dominates arrivals everywhere -> zero delay
        beta = alpha + 1.0
        # make beta nondecreasing (it is, alpha concave nondecreasing)
        assert alpha.horizontal_deviation(beta) == 0.0


class TestGridConsistency:
    @settings(max_examples=20)
    @given(concave_curves())
    def test_sampling_roundtrip(self, f):
        g = make_grid(20.0, 501)
        back = numeric.to_curve(numeric.sample(f, g), g)
        for t in [0.0, 3.0, 11.0, 19.0]:
            assert back(t) == pytest.approx(f(t), rel=1e-6, abs=1e-6)

    @settings(max_examples=15)
    @given(concave_curves(), convex_curves())
    def test_grid_hdev_close_to_exact(self, alpha, beta):
        exact = alpha.horizontal_deviation(beta)
        if not math.isfinite(exact) or exact > 100:
            return
        horizon = 4.0 * (exact + float(alpha.x[-1]) + float(beta.x[-1]) + 1)
        g = make_grid(horizon, 4001)
        approx = numeric.grid_hdev(numeric.sample(alpha, g),
                                   numeric.sample(beta, g), g)
        assert approx == pytest.approx(exact, rel=0.02, abs=2 * g.dt)
