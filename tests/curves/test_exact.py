"""Unit tests for the exact general min-plus kernel.

Brute-force reference: for piecewise-linear operands the inf/sup of
``f(s) + g(t-s)`` / ``f(t+u) - g(u)`` over a dense candidate grid is a
one-sided bound of the true value and converges to it; the exact kernel
must agree within a tolerance tied to the grid spacing.
"""

import math

import numpy as np
import pytest

from repro.context.metrics import MetricsRegistry, activate_registry
from repro.curves.exact import exact_convolve, exact_deconvolve
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.errors import CurveError


def brute_convolve(f, g, t, n=4001):
    ss = np.linspace(0.0, t, n)
    return float(np.min(f.sample(ss) + g.sample(t - ss)))


def brute_deconvolve(f, g, t, u_max, n=4001):
    us = np.linspace(0.0, u_max, n)
    return float(np.max(f.sample(t + us) - g.sample(us)))


def mixed(burst=1.0, rho=0.2, rate=1.0, latency=1.0):
    """rate_latency ∧ affine: convex near 0, concave beyond."""
    return P.rate_latency(rate, latency).minimum(
        P.affine(burst, rho)).simplified()


class TestExactConvolve:
    def test_matches_closed_form_concave(self):
        f, g = P.affine(1.0, 0.5), P.affine(2.0, 0.2)
        out = exact_convolve(f, g)
        ts = np.linspace(0.0, 30.0, 301)
        ref = f.convolve(g)
        np.testing.assert_allclose(out.sample(ts), ref.sample(ts),
                                   atol=1e-9)

    def test_matches_closed_form_convex(self):
        f, g = P.rate_latency(1.0, 1.0), P.rate_latency(2.0, 2.0)
        out = exact_convolve(f, g)
        assert out(3.0) == 0.0
        assert out(4.0) == pytest.approx(1.0)
        assert out.final_slope == pytest.approx(1.0)

    def test_mixed_convexity_brute_force(self):
        f = mixed()
        g = P.rate_latency(1.0, 1.0)
        out = exact_convolve(f, g)
        for t in (0.0, 0.5, 1.0, 2.0, 3.7, 5.0, 12.0):
            assert out(t) == pytest.approx(brute_convolve(f, g, t),
                                           abs=2e-3)

    def test_mixed_mixed_brute_force(self):
        f = mixed(1.0, 0.2, 1.0, 1.0)
        g = mixed(2.0, 0.1, 0.7, 2.5)
        out = exact_convolve(f, g)
        for t in (0.0, 1.0, 2.5, 4.0, 8.0, 20.0):
            assert out(t) == pytest.approx(brute_convolve(f, g, t),
                                           abs=2e-3)

    def test_random_pairs_brute_force(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            f = mixed(rng.uniform(0.1, 3), rng.uniform(0.05, 0.5),
                      rng.uniform(0.6, 2), rng.uniform(0.1, 3))
            g = mixed(rng.uniform(0.1, 3), rng.uniform(0.05, 0.5),
                      rng.uniform(0.6, 2), rng.uniform(0.1, 3))
            out = exact_convolve(f, g)
            for t in rng.uniform(0.0, 15.0, 4):
                assert out(float(t)) == pytest.approx(
                    brute_convolve(f, g, float(t)), abs=5e-3)

    def test_commutative_on_mixed(self):
        f, g = mixed(), P.rate_latency(0.8, 2.0)
        a, b = exact_convolve(f, g), exact_convolve(g, f)
        ts = np.linspace(0.0, 25.0, 501)
        np.testing.assert_allclose(a.sample(ts), b.sample(ts), atol=1e-9)
        assert a.final_slope == pytest.approx(b.final_slope)

    def test_zero_curve_collapses_to_value_at_zero(self):
        # (f ⊗ 0)(t) = inf_s f(s) + 0 = f(0) for nondecreasing f —
        # the ⊗ identity is the burst delta, not the zero function
        f = mixed()
        out = exact_convolve(f, P.constant(0.0))
        ts = np.linspace(0.0, 20.0, 201)
        np.testing.assert_allclose(out.sample(ts), f(0.0), atol=1e-9)

    def test_constant_shifts_values(self):
        out = exact_convolve(P.constant(3.0), mixed())
        # min(3 + mixed(t-s) at s ~ t, mixed-part...) — brute check
        for t in (0.0, 1.0, 5.0):
            assert out(t) == pytest.approx(
                brute_convolve(P.constant(3.0), mixed(), t), abs=2e-3)

    def test_final_slope_is_min_of_rates(self):
        f = mixed(rho=0.2)
        g = mixed(rho=0.35)
        assert exact_convolve(f, g).final_slope == pytest.approx(0.2)

    def test_counts_general_path_only(self):
        reg = MetricsRegistry()
        with activate_registry(reg):
            exact_convolve(P.affine(1, 0.5), P.affine(2, 0.2))  # closed
            exact_convolve(mixed(), P.rate_latency(1.0, 1.0))   # general
        assert reg.get("curve.exact_convolve") == 1.0


class TestExactDeconvolve:
    def test_affine_rate_latency_closed_form(self):
        # affine(sigma, rho) ⊘ rate_latency(R, T) = sigma + rho*T + rho*t
        out = exact_deconvolve(P.affine(1.0, 0.25),
                               P.rate_latency(1.0, 2.0))
        assert out(0.0) == pytest.approx(1.5)
        assert out.final_slope == pytest.approx(0.25)

    def test_equal_rates_stay_finite(self):
        out = exact_deconvolve(P.affine(2.0, 0.5), P.line(0.5))
        assert out(0.0) == pytest.approx(2.0)
        assert out(4.0) == pytest.approx(4.0)
        assert out.final_slope == pytest.approx(0.5)

    def test_brute_force_agreement(self):
        rng = np.random.default_rng(23)
        for _ in range(25):
            f = P.affine(rng.uniform(0.1, 3), rng.uniform(0.05, 0.5))
            g = P.rate_latency(f.final_slope + rng.uniform(0.1, 1.5),
                               rng.uniform(0.0, 3.0))
            out = exact_deconvolve(f, g)
            for t in rng.uniform(0.0, 10.0, 3):
                ref = brute_deconvolve(f, g, float(t), u_max=80.0)
                assert out(float(t)) == pytest.approx(ref, abs=5e-3)
                # brute force is a lower bound of the sup: never above
                assert out(float(t)) >= ref - 1e-9

    def test_mixed_numerator_brute_force(self):
        f = mixed(2.0, 0.2, 1.5, 0.5)
        g = P.rate_latency(1.0, 1.0)
        out = exact_deconvolve(f, g)
        for t in (0.0, 0.7, 2.0, 6.0):
            assert out(t) == pytest.approx(
                brute_deconvolve(f, g, t, u_max=60.0), abs=5e-3)

    def test_divergence_raises(self):
        with pytest.raises(CurveError, match="diverges"):
            exact_deconvolve(P.affine(1.0, 2.0), P.line(1.0))

    def test_constant_denominator(self):
        out = exact_deconvolve(P.constant(3.0), P.line(1.0))
        assert out(0.0) == pytest.approx(3.0)
        assert out.final_slope == 0.0

    def test_tail_slope_is_long_term_rate(self):
        f = mixed(1.0, 0.3, 2.0, 0.2)
        g = P.rate_latency(1.0, 1.0)
        assert exact_deconvolve(f, g).final_slope == pytest.approx(
            f.long_term_rate())

    def test_counts_exact_deconvolve(self):
        reg = MetricsRegistry()
        with activate_registry(reg):
            exact_deconvolve(P.affine(1.0, 0.25),
                             P.rate_latency(1.0, 2.0))
        assert reg.get("curve.exact_deconvolve") == 1.0

    def test_result_dominates_f(self):
        # g(0) == 0 for service curves ⇒ (f ⊘ g)(t) >= f(t)
        f = mixed(1.5, 0.25, 1.2, 0.8)
        g = P.rate_latency(1.0, 2.0)
        out = exact_deconvolve(f, g)
        ts = np.linspace(0.0, 30.0, 301)
        assert np.all(out.sample(ts) >= f.sample(ts) - 1e-9)


class TestDegenerate:
    def test_zero_curves(self):
        z = P.zero()
        assert exact_convolve(z, z)(5.0) == 0.0
        out = exact_deconvolve(z, P.line(1.0))
        assert out(3.0) == 0.0

    def test_zero_latency_rate_latency(self):
        f = mixed()
        out = exact_convolve(f, P.rate_latency(5.0, 0.0))
        for t in (0.0, 1.0, 4.0):
            assert out(t) == pytest.approx(brute_convolve(
                f, P.rate_latency(5.0, 0.0), t), abs=2e-3)

    def test_burst_only_curve(self):
        # pure burst: constant sigma (rate 0 numerator)
        out = exact_deconvolve(P.constant(2.0), P.rate_latency(1.0, 1.5))
        assert out(0.0) == pytest.approx(2.0)
        assert out.final_slope == 0.0
        assert math.isfinite(out(100.0))
