"""Property-based tests (hypothesis) for the exact general kernel.

The algebraic laws the analyses rely on, checked on *mixed-convexity*
operands (the shapes that force the general decomposition paths rather
than the closed forms):

* ``⊗`` is commutative and associative;
* the Galois (adjunction) inequality ``(f ⊘ g) ⊗ g >= f``;
* the exact results sit inside the sampled grid backend's documented
  error envelope (and on the sound side of it).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.curves.exact import exact_convolve, exact_deconvolve
from repro.curves.kernels import use_kernel
from repro.curves.operations import _auto_grid, convolve
from repro.curves.piecewise import PiecewiseLinearCurve as P

# -- strategies --------------------------------------------------------

burst = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)
rho = st.floats(min_value=0.05, max_value=0.6, allow_nan=False)
latency = st.floats(min_value=0.0, max_value=4.0, allow_nan=False)


@st.composite
def mixed_curves(draw):
    """rate_latency ∧ affine — neither convex nor concave in general."""
    r = draw(rho)
    peak = draw(st.floats(min_value=r + 0.3, max_value=3.0))
    return P.rate_latency(peak, draw(latency)).minimum(
        P.affine(draw(burst), r)).simplified()


@st.composite
def concave_arrivals(draw):
    return P.affine(draw(burst), draw(rho))


@st.composite
def convex_services(draw):
    # rate above every arrival strategy's max rho, so ⊘ converges
    rate = draw(st.floats(min_value=0.7, max_value=3.0))
    return P.rate_latency(rate, draw(latency))


def _assert_pointwise_close(a, b, ts, atol=1e-7):
    np.testing.assert_allclose(a.sample(ts), b.sample(ts), atol=atol)


# -- properties --------------------------------------------------------

class TestConvolveAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(mixed_curves(), mixed_curves())
    def test_commutative(self, f, g):
        ts = np.linspace(0.0, 40.0, 201)
        _assert_pointwise_close(exact_convolve(f, g),
                                exact_convolve(g, f), ts)

    @settings(max_examples=30, deadline=None)
    @given(mixed_curves(), mixed_curves(), convex_services())
    def test_associative(self, f, g, h):
        ts = np.linspace(0.0, 40.0, 101)
        left = exact_convolve(exact_convolve(f, g), h)
        right = exact_convolve(f, exact_convolve(g, h))
        _assert_pointwise_close(left, right, ts, atol=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(mixed_curves(), mixed_curves())
    def test_dominated_by_both_operands_plus_origin(self, f, g):
        # (f ⊗ g)(t) <= f(t) + g(0) and <= f(0) + g(t)
        ts = np.linspace(0.0, 30.0, 121)
        out = exact_convolve(f, g).sample(ts)
        assert np.all(out <= f.sample(ts) + g(0.0) + 1e-9)
        assert np.all(out <= g.sample(ts) + f(0.0) + 1e-9)


class TestGaloisConnection:
    @settings(max_examples=60, deadline=None)
    @given(concave_arrivals(), convex_services())
    def test_deconvolve_then_convolve_dominates(self, f, g):
        # (f ⊘ g) ⊗ g >= f  (the adjunction the output bound rests on)
        out = exact_convolve(exact_deconvolve(f, g), g)
        ts = np.linspace(0.0, 60.0, 241)
        assert np.all(out.sample(ts) >= f.sample(ts) - 1e-7)

    @settings(max_examples=60, deadline=None)
    @given(mixed_curves(), convex_services())
    def test_mixed_numerator_galois(self, f, g):
        out = exact_convolve(exact_deconvolve(f, g), g)
        ts = np.linspace(0.0, 60.0, 241)
        assert np.all(out.sample(ts) >= f.sample(ts) - 1e-7)


class TestExactVsGridEnvelope:
    @settings(max_examples=25, deadline=None)
    @given(mixed_curves(), convex_services())
    def test_convolution_within_grid_envelope(self, f, g):
        exact = exact_convolve(f, g)
        with use_kernel("grid"):
            sampled = convolve(f, g)
        grid = _auto_grid(f, g)
        # probe at grid points: between them the reconstructed grid
        # curve interpolates linearly and may dip below the exact
        # curve by O(dt*L) in concave regions
        ts = grid.times[:: max(1, grid.n // 96)]
        ts = ts[ts <= 0.5 * grid.horizon]
        ve, vg = exact.sample(ts), sampled.sample(ts)
        # grid inf ranges over fewer split points: never below exact
        assert np.all(ve <= vg + 1e-9)
        lips = float(np.max(np.abs(f.slopes()))) + \
            float(np.max(np.abs(g.slopes())))
        assert np.all(vg - ve <= 2.0 * grid.dt * (1.0 + lips) + 1e-9)
