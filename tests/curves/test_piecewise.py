"""Unit tests for the exact piecewise-linear curve algebra."""

import math

import numpy as np
import pytest

from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.errors import CurveError


class TestConstruction:
    def test_zero_curve(self):
        z = P.zero()
        assert z(0) == 0 and z(100) == 0

    def test_constant(self):
        c = P.constant(3.5)
        assert c(0) == 3.5 and c(10) == 3.5

    def test_line(self):
        f = P.line(2.0)
        assert f(0) == 0 and f(3) == 6.0

    def test_affine(self):
        f = P.affine(1.0, 0.5)
        assert f(0) == 1.0 and f(4) == 3.0

    def test_rate_latency(self):
        f = P.rate_latency(2.0, 3.0)
        assert f(0) == 0 and f(3) == 0 and f(5) == 4.0

    def test_rate_latency_zero_latency_is_line(self):
        assert P.rate_latency(2.0, 0.0) == P.line(2.0)

    def test_rate_latency_rejects_negative_latency(self):
        with pytest.raises(CurveError):
            P.rate_latency(1.0, -1.0)

    def test_from_breakpoints_sorts(self):
        f = P.from_breakpoints([(2.0, 4.0), (0.0, 0.0)], 1.0)
        assert f(1.0) == 2.0

    def test_requires_x_start_at_zero(self):
        with pytest.raises(CurveError):
            P([1.0], [0.0], 1.0)

    def test_rejects_unsorted_x(self):
        with pytest.raises(CurveError):
            P([0.0, 2.0, 1.0], [0.0, 1.0, 2.0], 1.0)

    def test_rejects_duplicate_x(self):
        with pytest.raises(CurveError):
            P([0.0, 1.0, 1.0], [0.0, 1.0, 2.0], 1.0)

    def test_rejects_nan(self):
        with pytest.raises(CurveError):
            P([0.0], [math.nan], 1.0)

    def test_rejects_infinite_slope(self):
        with pytest.raises(CurveError):
            P([0.0], [0.0], math.inf)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(CurveError):
            P([0.0, 1.0], [0.0], 1.0)

    def test_immutable_breakpoints(self):
        f = P.line(1.0)
        with pytest.raises(ValueError):
            f.x[0] = 5.0


class TestEvaluation:
    def test_negative_time_is_zero(self):
        f = P.affine(1.0, 1.0)
        assert f(-1.0) == 0.0

    def test_vectorized(self):
        f = P.rate_latency(1.0, 1.0)
        out = f(np.array([-1.0, 0.5, 1.0, 3.0]))
        assert np.allclose(out, [0.0, 0.0, 0.0, 2.0])

    def test_scalar_returns_float(self):
        assert isinstance(P.line(1.0)(2), float)

    def test_interpolation_inside_segment(self):
        f = P([0.0, 2.0], [0.0, 4.0], 0.0)
        assert f(1.0) == 2.0

    def test_extrapolation_with_final_slope(self):
        f = P([0.0, 1.0], [0.0, 1.0], 3.0)
        assert f(2.0) == 4.0


class TestQueries:
    def test_slopes(self):
        f = P([0.0, 1.0, 3.0], [0.0, 2.0, 3.0], 0.25)
        assert np.allclose(f.slopes(), [2.0, 0.5, 0.25])

    def test_is_concave_convex(self):
        assert P([0.0, 1.0], [0.0, 2.0], 0.5).is_concave()
        assert P([0.0, 1.0], [0.0, 0.5], 2.0).is_convex()
        assert not P([0.0, 1.0], [0.0, 2.0], 0.5).is_convex()

    def test_line_is_both(self):
        assert P.line(1.0).is_concave() and P.line(1.0).is_convex()

    def test_is_nondecreasing(self):
        assert P.affine(1.0, 0.0).is_nondecreasing()
        assert not P([0.0, 1.0], [1.0, 0.0], 0.0).is_nondecreasing()

    def test_value_at_zero_and_rate(self):
        f = P.affine(2.0, 0.3)
        assert f.value_at_zero() == 2.0
        assert f.long_term_rate() == 0.3

    def test_simplified_drops_collinear(self):
        f = P([0.0, 1.0, 2.0], [0.0, 1.0, 2.0], 1.0)
        assert f.simplified().n_breakpoints == 1


class TestArithmetic:
    def test_add_curves(self):
        f = P.affine(1.0, 0.5) + P.line(1.0)
        assert f(0) == 1.0 and f(2) == 4.0

    def test_add_scalar(self):
        f = P.line(1.0) + 2.0
        assert f(0) == 2.0 and f(1) == 3.0

    def test_radd(self):
        f = 2.0 + P.line(1.0)
        assert f(0) == 2.0

    def test_sub(self):
        f = P.line(2.0) - P.line(0.5)
        assert f(4) == 6.0

    def test_neg(self):
        f = -P.affine(1.0, 1.0)
        assert f(1.0) == -2.0

    def test_scalar_multiply(self):
        f = P.affine(1.0, 1.0) * 3.0
        assert f(1.0) == 6.0
        g = 3.0 * P.affine(1.0, 1.0)
        assert g(1.0) == 6.0

    def test_add_preserves_breakpoints(self):
        a = P([0.0, 1.0], [0.0, 1.0], 0.0)
        b = P([0.0, 2.0], [0.0, 1.0], 0.0)
        s = a + b
        # breakpoints at 1 and 2 both present
        assert s(1.0) == pytest.approx(1.5)
        assert s(2.0) == pytest.approx(2.0)
        assert s(3.0) == pytest.approx(2.0)

    def test_equality_after_simplification(self):
        a = P([0.0, 1.0, 2.0], [0.0, 1.0, 2.0], 1.0)
        assert a == P.line(1.0)

    def test_inequality(self):
        assert P.line(1.0) != P.line(2.0)


class TestMinMax:
    def test_min_of_crossing_lines(self):
        a = P.affine(1.0, 0.0)     # constant 1
        b = P.line(0.5)            # crosses at t=2
        m = a.minimum(b)
        assert m(1.0) == 0.5
        assert m(2.0) == 1.0
        assert m(4.0) == 1.0
        assert m.final_slope == 0.0

    def test_max_of_crossing_lines(self):
        a = P.affine(1.0, 0.0)
        b = P.line(0.5)
        m = a.maximum(b)
        assert m(1.0) == 1.0
        assert m(4.0) == 2.0

    def test_min_finds_crossing_beyond_breakpoints(self):
        a = P.affine(10.0, 0.1)
        b = P.line(1.0)  # crosses at t = 10/0.9
        m = a.minimum(b)
        tcross = 10.0 / 0.9
        assert m(tcross - 1) == pytest.approx(b(tcross - 1))
        assert m(tcross + 1) == pytest.approx(a(tcross + 1))

    def test_token_bucket_shape(self):
        # min(t, 1 + 0.2 t) is the paper's source constraint
        m = P.line(1.0).minimum(P.affine(1.0, 0.2))
        assert m(0.0) == 0.0
        assert m(1.0) == 1.0
        assert m(1.25) == pytest.approx(1.25)
        assert m(2.0) == pytest.approx(1.4)

    def test_positive_part(self):
        f = (P.line(1.0) - P.affine(2.0, 0.5)).positive_part()
        assert f(0.0) == 0.0
        assert f(4.0) == 0.0   # crossing at t=4
        assert f(6.0) == pytest.approx(1.0)

    def test_min_against_identical(self):
        f = P.affine(1.0, 0.5)
        assert f.minimum(f) == f


class TestShifts:
    def test_shift_right_rate_latency(self):
        f = P.line(1.0).shift_right(2.0)
        assert f(1.0) == 0.0
        assert f(3.0) == 1.0

    def test_shift_right_zero_is_identity(self):
        f = P.affine(1.0, 1.0)
        assert f.shift_right(0.0) is f

    def test_shift_right_negative_raises(self):
        with pytest.raises(CurveError):
            P.line(1.0).shift_right(-1.0)

    def test_shift_right_preserves_jump(self):
        f = P.affine(2.0, 1.0).shift_right(1.0)
        assert f(0.5) == 0.0
        assert f(1.0 + 1e-6) == pytest.approx(2.0, abs=1e-4)

    def test_shift_left_x_affine(self):
        # b(I + d) of a token bucket: burst inflation
        f = P.affine(1.0, 0.5).shift_left_x(2.0)
        assert f(0.0) == pytest.approx(2.0)   # 1 + 0.5*2
        assert f.final_slope == 0.5

    def test_shift_left_x_zero_is_identity(self):
        f = P.affine(1.0, 1.0)
        assert f.shift_left_x(0.0) is f

    def test_shift_left_x_drops_knee(self):
        # peak-limited bucket: knee at 1.25; shifting past it leaves affine
        b = P.line(1.0).minimum(P.affine(1.0, 0.2))
        out = b.shift_left_x(2.0)
        assert out(0.0) == pytest.approx(1.4)
        assert out(1.0) == pytest.approx(1.6)

    def test_shift_left_x_negative_raises(self):
        with pytest.raises(CurveError):
            P.line(1.0).shift_left_x(-0.1)


class TestPseudoInverse:
    def test_line(self):
        f = P.line(2.0)
        assert f.pseudo_inverse(4.0) == 2.0

    def test_vectorized(self):
        f = P.line(1.0)
        out = f.pseudo_inverse(np.array([0.0, 1.0, 2.0]))
        assert np.allclose(out, [0.0, 1.0, 2.0])

    def test_below_initial_value(self):
        f = P.affine(1.0, 1.0)
        assert f.pseudo_inverse(0.5) == 0.0

    def test_flat_segment_takes_left_edge(self):
        f = P([0.0, 1.0, 2.0], [0.0, 1.0, 1.0], 1.0)
        assert f.pseudo_inverse(1.0) == pytest.approx(1.0)

    def test_beyond_breakpoints(self):
        f = P([0.0, 1.0], [0.0, 1.0], 2.0)
        assert f.pseudo_inverse(3.0) == pytest.approx(2.0)

    def test_unreachable_value_is_inf(self):
        f = P.constant(1.0)
        assert f.pseudo_inverse(2.0) == math.inf

    def test_requires_nondecreasing(self):
        f = P([0.0, 1.0], [1.0, 0.0], 0.0)
        with pytest.raises(CurveError):
            f.pseudo_inverse(0.5)

    def test_galois_inequality(self):
        # f(f^{-1}(v)) >= v for continuous nondecreasing f
        f = P([0.0, 1.0, 3.0], [0.0, 2.0, 2.5], 0.5)
        for v in [0.0, 0.5, 2.0, 2.25, 3.0]:
            t = f.pseudo_inverse(v)
            assert f(t) >= v - 1e-9


class TestConvolution:
    def test_concave_pair_is_min_with_offsets(self):
        a = P.affine(1.0, 0.5)
        b = P.affine(3.0, 0.1)
        c = a.convolve(b)
        for t in [0.0, 1.0, 5.0, 20.0]:
            assert c(t) == pytest.approx(min(a(t) + 3.0, b(t) + 1.0))

    def test_rate_latency_pair(self):
        c = P.rate_latency(2.0, 1.0).convolve(P.rate_latency(1.0, 2.0))
        assert c(3.0) == 0.0
        assert c(5.0) == pytest.approx(2.0)
        assert c.final_slope == 1.0

    def test_convex_with_line(self):
        c = P.line(1.0).convolve(P.rate_latency(2.0, 1.0))
        # latency 1, then rate min(1,2)=1
        assert c(1.0) == 0.0
        assert c(2.0) == pytest.approx(1.0)

    def test_mixed_raises(self):
        concave = P.line(1.0).minimum(P.affine(1.0, 0.2))
        convex = P.rate_latency(1.0, 1.0)
        with pytest.raises(CurveError):
            concave.convolve(convex)

    def test_convolution_dominated_by_operands(self):
        a = P.affine(1.0, 0.5)
        b = P.affine(2.0, 0.3)
        c = a.convolve(b)
        for t in [0.0, 1.0, 10.0]:
            assert c(t) <= a(t) + b.value_at_zero() + 1e-9
            assert c(t) <= b(t) + a.value_at_zero() + 1e-9

    def test_brute_force_agreement_convex(self):
        f = P.rate_latency(1.5, 2.0)
        g = P.rate_latency(0.5, 1.0)
        c = f.convolve(g)
        ss = np.linspace(0, 10, 2001)
        for t in [0.5, 3.0, 7.0, 10.0]:
            brute = min(f(s) + g(t - s) for s in ss[ss <= t])
            assert c(t) == pytest.approx(brute, abs=1e-6)


class TestDeviations:
    def test_hdev_affine_vs_line(self):
        # token bucket vs unit server: delay = sigma/C
        assert P.affine(2.0, 0.5).horizontal_deviation(P.line(1.0)) == \
            pytest.approx(2.0)

    def test_hdev_affine_vs_rate_latency(self):
        # sigma/R + T
        d = P.affine(1.0, 0.2).horizontal_deviation(P.rate_latency(0.5, 2.0))
        assert d == pytest.approx(1.0 / 0.5 + 2.0)

    def test_hdev_unstable_is_inf(self):
        d = P.affine(1.0, 2.0).horizontal_deviation(P.line(1.0))
        assert d == math.inf

    def test_hdev_saturating_service_is_inf(self):
        d = P.affine(1.0, 0.1).horizontal_deviation(P.constant(0.5))
        assert d == math.inf

    def test_hdev_zero_when_service_dominates(self):
        d = P.line(0.5).horizontal_deviation(P.line(1.0))
        assert d == 0.0

    def test_hdev_peak_limited_aggregate(self):
        # three fresh sources at a unit server: 2 sigma/(1-rho)
        b = P.line(1.0).minimum(P.affine(1.0, 0.2))
        agg = b + b + b
        assert agg.horizontal_deviation(P.line(1.0)) == \
            pytest.approx(2.0 / 0.8)

    def test_vdev_affine_vs_line(self):
        # backlog of token bucket at unit server = sigma
        assert P.affine(2.0, 0.5).vertical_deviation(P.line(1.0)) == \
            pytest.approx(2.0)

    def test_vdev_unstable_is_inf(self):
        assert P.affine(1.0, 2.0).vertical_deviation(P.line(1.0)) == \
            math.inf

    def test_hdev_brute_force(self):
        alpha = P.line(1.0).minimum(P.affine(2.0, 0.3)) + \
            P.affine(0.5, 0.1)
        beta = P.rate_latency(0.9, 1.5)
        d = alpha.horizontal_deviation(beta)
        ts = np.linspace(0, 40, 8001)
        brute = max(float(beta.pseudo_inverse(alpha(t))) - t for t in ts)
        assert d == pytest.approx(brute, abs=1e-3)
        assert d >= brute - 1e-9  # never underestimates


class TestFirstCrossing:
    def test_busy_period_of_burst(self):
        # affine(1, 0.5) crosses t at t=2
        assert P.affine(1.0, 0.5).first_crossing_below(P.line(1.0)) == \
            pytest.approx(2.0)

    def test_zero_when_always_below(self):
        assert P.line(0.5).first_crossing_below(P.line(1.0)) == 0.0

    def test_inf_when_never_crossing(self):
        assert P.affine(1.0, 2.0).first_crossing_below(P.line(1.0)) == \
            math.inf

    def test_crossing_beyond_breakpoints(self):
        f = P([0.0, 1.0], [1.0, 2.0], 0.1)  # rises then slope 0.1 < 1
        t = f.first_crossing_below(P.line(1.0))
        assert f(t) == pytest.approx(t, abs=1e-9)

    def test_starts_at_zero_with_rise(self):
        # G(t) = 3 min(t, 1 + 0.2 t) crosses t at 7.5
        b = P.line(1.0).minimum(P.affine(1.0, 0.2))
        agg = b * 3.0
        assert agg.first_crossing_below(P.line(1.0)) == pytest.approx(7.5)


class TestRepr:
    def test_repr_contains_points(self):
        assert "final_slope" in repr(P.affine(1.0, 0.5))
