"""Unit tests for token-bucket descriptors (paper eq. (4))."""

import math

import pytest

from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.curves.token_bucket import TokenBucket, aggregate_curve


class TestConstruction:
    def test_defaults_to_infinite_peak(self):
        tb = TokenBucket(1.0, 0.5)
        assert math.isinf(tb.peak)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 0.5)

    def test_rejects_negative_rho(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, -0.5)

    def test_rejects_peak_below_rho(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5, peak=0.25)

    def test_rejects_zero_peak(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.0, peak=0.0)

    def test_frozen(self):
        tb = TokenBucket(1.0, 0.5)
        with pytest.raises(AttributeError):
            tb.sigma = 2.0


class TestConstraintCurve:
    def test_pure_affine(self):
        b = TokenBucket(1.0, 0.5).constraint_curve()
        assert b(0.0) == 1.0
        assert b(2.0) == 2.0

    def test_peak_limited_paper_form(self):
        # b(I) = min(I, 1 + 0.2 I): knee at 1.25
        b = TokenBucket(1.0, 0.2, peak=1.0).constraint_curve()
        assert b(0.0) == 0.0
        assert b(1.0) == 1.0
        assert b(1.25) == pytest.approx(1.25)
        assert b(5.0) == pytest.approx(2.0)
        assert b.is_concave()

    def test_degenerate_peak_equals_rho(self):
        b = TokenBucket(1.0, 0.5, peak=0.5).constraint_curve()
        assert b == P.line(0.5)

    def test_zero_sigma_peak_limited(self):
        b = TokenBucket(0.0, 0.5, peak=1.0).constraint_curve()
        assert b(0.0) == 0.0
        assert b(2.0) == pytest.approx(1.0)

    def test_curve_is_nondecreasing(self):
        assert TokenBucket(2.0, 0.1, peak=3.0).constraint_curve() \
            .is_nondecreasing()


class TestDelayed:
    def test_burst_inflation(self):
        tb = TokenBucket(1.0, 0.5).delayed(2.0)
        assert tb.sigma == pytest.approx(2.0)
        assert tb.rho == 0.5

    def test_drops_peak_limit(self):
        tb = TokenBucket(1.0, 0.5, peak=1.0).delayed(1.0)
        assert math.isinf(tb.peak)

    def test_zero_delay_keeps_sigma(self):
        tb = TokenBucket(1.0, 0.5).delayed(0.0)
        assert tb.sigma == 1.0

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5).delayed(-1.0)

    def test_delayed_curve_matches_shift(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        out = tb.delayed_curve(3.0)
        b = tb.constraint_curve()
        for t in [0.0, 1.0, 5.0]:
            assert out(t) == pytest.approx(b(t + 3.0))

    def test_delayed_curve_dominates_input(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        b, out = tb.constraint_curve(), tb.delayed_curve(2.0)
        for t in [0.0, 0.5, 2.0, 10.0]:
            assert out(t) >= b(t) - 1e-12


class TestAlgebra:
    def test_add(self):
        s = TokenBucket(1.0, 0.2, peak=1.0) + TokenBucket(2.0, 0.3, peak=1.0)
        assert s.sigma == 3.0 and s.rho == 0.5 and s.peak == 2.0

    def test_add_infinite_peak_wins(self):
        s = TokenBucket(1.0, 0.2) + TokenBucket(2.0, 0.3, peak=1.0)
        assert math.isinf(s.peak)

    def test_scaled(self):
        s = TokenBucket(1.0, 0.2, peak=1.0).scaled(2.0)
        assert s.sigma == 2.0 and s.rho == 0.4 and s.peak == 2.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.2).scaled(0.0)

    def test_aggregate_curve_of_buckets(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        agg = aggregate_curve([tb, tb, tb])
        assert agg(10.0) == pytest.approx(3 * tb.constraint_curve()(10.0))

    def test_aggregate_mixes_buckets_and_curves(self):
        tb = TokenBucket(1.0, 0.2)
        agg = aggregate_curve([tb, P.line(0.5)])
        assert agg(2.0) == pytest.approx(1.4 + 1.0)

    def test_aggregate_empty_is_zero(self):
        assert aggregate_curve([]) == P.zero()
