"""Kernel selection and dispatch: resolve / precedence / auto fallback.

The dispatch contract (see docs/KERNELS.md): per-call ``kernel=``
argument beats the innermost :func:`use_kernel` scope, which beats the
``REPRO_CURVE_KERNEL`` environment variable, which beats the compiled
default ``"exact"``.  The ``auto`` kernel only touches the grid on a
diverging deconvolution, and counts every such fallback.
"""

import numpy as np
import pytest

from repro.context import AnalysisContext
from repro.context.metrics import MetricsRegistry, activate_registry
from repro.curves.kernels import (DEFAULT_KERNEL, ENV_VAR, KERNELS,
                                  current_kernel, resolve_kernel,
                                  use_kernel)
from repro.curves.operations import convolve, deconvolve
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.errors import CurveError


class TestResolveKernel:
    def test_valid_names(self):
        for name in KERNELS:
            assert resolve_kernel(name) == name

    def test_normalizes_case_and_whitespace(self):
        assert resolve_kernel("  Exact ") == "exact"
        assert resolve_kernel("GRID") == "grid"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown curve kernel"):
            resolve_kernel("sampled")
        with pytest.raises(ValueError, match="unknown curve kernel"):
            resolve_kernel("")


class TestPrecedence:
    def test_compiled_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert current_kernel() == DEFAULT_KERNEL == "exact"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "grid")
        assert current_kernel() == "grid"

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            current_kernel()

    def test_scope_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "grid")
        with use_kernel("exact"):
            assert current_kernel() == "exact"
        assert current_kernel() == "grid"

    def test_scopes_nest_and_restore(self):
        with use_kernel("grid"):
            assert current_kernel() == "grid"
            with use_kernel("auto"):
                assert current_kernel() == "auto"
            assert current_kernel() == "grid"

    def test_none_scope_is_passthrough(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "grid")
        with use_kernel(None) as active:
            assert active == "grid"
            assert current_kernel() == "grid"

    def test_scope_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_kernel("grid"):
                raise RuntimeError("boom")
        assert current_kernel() == DEFAULT_KERNEL

    def test_per_call_arg_beats_scope(self):
        # grid deconvolve pads its bound above the exact one; the
        # per-call override must pick the exact backend despite the
        # ambient grid scope
        f, g = P.affine(2.0, 0.25), P.rate_latency(1.0, 2.0)
        with use_kernel("grid"):
            exact = deconvolve(f, g, kernel="exact")
            grid = deconvolve(f, g)
        assert exact(0.0) == pytest.approx(2.5)
        assert grid(0.0) > exact(0.0)

    def test_invalid_scope_name_raises(self):
        with pytest.raises(ValueError):
            with use_kernel("fast"):
                pass  # pragma: no cover


class TestContextPropagation:
    def test_with_kernel_copies(self):
        ctx = AnalysisContext()
        assert ctx.kernel is None
        grid_ctx = ctx.with_kernel("grid")
        assert grid_ctx.kernel == "grid"
        assert ctx.kernel is None

    def test_analysis_scope_activates_kernel(self):
        ctx = AnalysisContext(kernel="grid")
        with ctx.analysis_scope("test"):
            assert current_kernel() == "grid"
        assert current_kernel() == DEFAULT_KERNEL

    def test_analysis_scope_none_kernel_inherits(self):
        ctx = AnalysisContext()
        with use_kernel("grid"):
            with ctx.analysis_scope("test"):
                assert current_kernel() == "grid"


class TestAutoFallback:
    def test_exact_path_counts_no_fallbacks(self):
        reg = MetricsRegistry()
        f, g = P.affine(1.0, 0.25), P.rate_latency(1.0, 2.0)
        with activate_registry(reg), use_kernel("auto"):
            deconvolve(f, g)
            convolve(f.minimum(P.rate_latency(2.0, 0.5)), g)
        assert reg.get("curve.fallbacks") == 0.0

    def test_diverging_deconvolve_falls_back_and_counts(self):
        # numerator outgrows denominator: exact raises, auto falls
        # back to the horizon-truncating grid backend
        reg = MetricsRegistry()
        f, g = P.affine(1.0, 2.0), P.line(1.0)
        with activate_registry(reg), use_kernel("auto"):
            out = deconvolve(f, g)
        assert reg.get("curve.fallbacks") == 1.0
        assert np.isfinite(out(0.0))

    def test_exact_kernel_raises_instead(self):
        with use_kernel("exact"):
            with pytest.raises(CurveError, match="diverges"):
                deconvolve(P.affine(1.0, 2.0), P.line(1.0))
