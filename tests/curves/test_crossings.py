"""Edge cases for ``busy_period`` / ``first_crossing_below``.

The busy-period scan is a closed-form breakpoint walk on the curve
itself — it must behave identically under every kernel (the kernel
only dispatches the *general* min-plus operations), and it must handle
the geometric corner cases exactly: a crossing landing on a
breakpoint, a tangency (touch and re-separate), the degenerate
``t -> 0+`` case where no backlog ever builds, and crossings in the
extrapolated tail beyond the last breakpoint.
"""

import math

import pytest

from repro.curves.kernels import use_kernel
from repro.curves.operations import busy_period
from repro.curves.piecewise import PiecewiseLinearCurve as P
from repro.errors import CurveError

KERNELS = ("exact", "grid", "auto")


@pytest.fixture(params=KERNELS)
def kernel(request):
    with use_kernel(request.param):
        yield request.param


class TestBusyPeriod:
    def test_tail_crossing_closed_form(self, kernel):
        # sigma + rho*t = C*t  =>  t = sigma / (C - rho) = 2 / 0.5 = 4,
        # beyond the curve's last breakpoint (tail extrapolation branch)
        assert busy_period(P.affine(2.0, 0.5), 1.0) == pytest.approx(4.0)

    def test_crossing_exactly_at_breakpoint(self, kernel):
        # aggregate meets C*t exactly at its own breakpoint t=3
        agg = P.from_breakpoints([(0.0, 2.0), (3.0, 3.0)],
                                 final_slope=1.0 / 3.0)
        assert busy_period(agg, 1.0) == pytest.approx(3.0)

    def test_tangency_returns_touch_point(self, kernel):
        # aggregate touches C*t at t=2 then rises above it again;
        # the busy period ends at the first touch, not the re-crossing
        agg = P.from_breakpoints([(0.0, 1.0), (2.0, 2.0), (4.0, 5.0)],
                                 final_slope=2.0)
        assert busy_period(agg, 1.0) == pytest.approx(2.0)

    def test_no_initial_backlog_is_zero(self, kernel):
        # aggregate(0) = 0 with slope <= C: backlog never builds,
        # the busy period collapses to 0 (t -> 0+ limit)
        assert busy_period(P.line(0.5), 1.0) == 0.0
        assert busy_period(P.zero(), 1.0) == 0.0

    def test_slope_exactly_capacity_from_zero(self, kernel):
        # marginal t -> 0+ case: starts at 0 with slope == C
        assert busy_period(P.line(1.0), 1.0) == 0.0

    def test_unstable_is_infinite(self, kernel):
        assert math.isinf(busy_period(P.affine(1.0, 2.0), 1.0))

    def test_marginally_unstable_is_infinite(self, kernel):
        # long-term rate == capacity with positive burst: the backlog
        # bound never returns to zero
        assert math.isinf(busy_period(P.affine(1.0, 1.0), 1.0))

    def test_nonpositive_capacity_raises(self, kernel):
        with pytest.raises(CurveError, match="capacity"):
            busy_period(P.affine(1.0, 0.5), 0.0)
        with pytest.raises(CurveError, match="capacity"):
            busy_period(P.affine(1.0, 0.5), -1.0)

    def test_kernel_invariant_bit_identical(self):
        agg = P.from_breakpoints([(0.0, 2.0), (1.0, 2.5), (3.0, 3.2)],
                                 final_slope=0.3)
        results = set()
        for name in KERNELS:
            with use_kernel(name):
                results.add(busy_period(agg, 1.0))
        assert len(results) == 1


class TestFirstCrossingBelow:
    def test_crossing_mid_segment_interpolates(self):
        f = P.from_breakpoints([(0.0, 3.0), (4.0, 3.0)], final_slope=0.0)
        g = P.line(1.0)
        # 3 = t at t=3, inside the segment [0, 4]
        assert f.first_crossing_below(g) == pytest.approx(3.0)

    def test_crossing_at_shared_breakpoint(self):
        f = P.from_breakpoints([(0.0, 1.0), (2.0, 2.0)], final_slope=0.2)
        g = P.from_breakpoints([(0.0, 0.0), (2.0, 2.0)], final_slope=2.0)
        assert f.first_crossing_below(g) == pytest.approx(2.0)

    def test_starts_at_or_below_is_zero(self):
        f = P.line(0.5)
        assert f.first_crossing_below(P.line(1.0)) == 0.0

    def test_never_crossing_is_infinite(self):
        f = P.affine(1.0, 1.0)
        assert math.isinf(f.first_crossing_below(P.line(0.5)))

    def test_tangency_mid_curve(self):
        # difference dips to exactly zero at t=2 and grows again
        f = P.from_breakpoints([(0.0, 1.0), (2.0, 2.0), (3.0, 4.0)],
                               final_slope=3.0)
        assert f.first_crossing_below(P.line(1.0)) == pytest.approx(2.0)
