"""Parallel batch admission: serial equivalence and safe fallbacks.

The contract under test (``repro.admission.batch``): for any batch,
``admit_batch(requests, workers=N)`` produces the *same decisions* as
the serial ``admit`` loop — admitted flags, reason strings, bounds down
to ``float.hex`` — and commits the same final network.  Whenever the
planner cannot guarantee that, it must return ``None`` and the batch
must take the serial loop unchanged.
"""

import math

import numpy as np
import pytest

from repro.admission.batch import plan_batch
from repro.admission.controller import AdmissionController
from repro.admission.requests import ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.context import AnalysisContext, Deadline, MetricsRegistry
from repro.curves.token_bucket import TokenBucket
from repro.engine import reports_identical
from repro.network.generators import random_multicomponent

N_COMPONENTS = 4
SPC = 4  # servers per component


def workload(seed: int, deadline_slack: float = math.inf):
    """A multi-component baseline; optionally tighten flow deadlines to
    ``bound * deadline_slack`` so later admissions can violate them."""
    net = random_multicomponent(seed, n_components=N_COMPONENTS,
                                servers_per_component=SPC,
                                flows_per_component=5,
                                max_utilization=0.6)
    if math.isinf(deadline_slack):
        return net
    report = DecomposedAnalysis().analyze(net)
    from repro.network import Flow, Network
    flows = [Flow(f.name, f.bucket, f.path,
                  report.delay_of(f.name) * deadline_slack, f.priority)
             for f in net.flows.values()]
    return Network(list(net.servers.values()), flows)


def make_requests(seed: int, n: int, *, deadline: float = 100.0,
                  sigma: float = 0.5, rho: float = 0.05):
    rng = np.random.default_rng(seed)
    reqs = []
    for i in range(n):
        c = int(rng.integers(0, N_COMPONENTS))
        a = int(rng.integers(0, SPC))
        b = int(rng.integers(a, SPC))
        path = tuple(range(c * SPC + a, c * SPC + b + 1))
        reqs.append(ConnectionRequest(
            f"new{i}", TokenBucket(sigma, rho, peak=1.0), path, deadline))
    return reqs


def decisions_equal(serial, parallel):
    if len(serial) != len(parallel):
        return False
    for s, p in zip(serial, parallel):
        if s.admitted != p.admitted or s.reason != p.reason:
            return False
        sb, pb = s.new_flow_bound, p.new_flow_bound
        if (sb is None) != (pb is None):
            return False
        if sb is not None and float(sb).hex() != float(pb).hex():
            return False
    return True


def run_both(net, requests, **kwargs):
    serial_ctrl = AdmissionController(net, DecomposedAnalysis(), **kwargs)
    par_ctrl = AdmissionController(net, DecomposedAnalysis(), **kwargs)
    ctx = AnalysisContext(metrics=MetricsRegistry())
    d_serial = serial_ctrl.admit_batch(requests, workers=1)
    d_par = par_ctrl.admit_batch(requests, workers=3, ctx=ctx)
    return d_serial, d_par, serial_ctrl, par_ctrl, ctx


class TestSerialEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_admitted_fuzz(self, seed):
        net = workload(seed)
        d_s, d_p, c_s, c_p, ctx = run_both(net, make_requests(seed, 8))
        assert decisions_equal(d_s, d_p)
        assert c_s.admitted == c_p.admitted
        assert ctx.metrics.get("parallel.batch_groups") >= 2
        assert reports_identical(
            DecomposedAnalysis().analyze(c_s.network),
            DecomposedAnalysis().analyze(c_p.network))

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_rejections_fuzz(self, seed):
        # heavy requests against tight existing deadlines: a mix of
        # admissions, requested-connection and existing-connection
        # deadline rejections
        net = workload(seed, deadline_slack=1.10)
        reqs = make_requests(seed + 50, 10, deadline=2.0,
                             sigma=2.0, rho=0.1)
        d_s, d_p, c_s, c_p, _ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert c_s.admitted == c_p.admitted
        reasons = {d.reason.split(":")[0] for d in d_s}
        assert "deadline violation" in reasons  # the mix materialized

    def test_sequential_within_component(self):
        # several requests on one path: later ones must see earlier
        # admissions (worker-local commit order)
        net = workload(9, deadline_slack=1.6)
        path = tuple(range(0, SPC))
        other = tuple(range(SPC, 2 * SPC))
        reqs = [ConnectionRequest(f"s{i}", TokenBucket(1.0, 0.08, peak=1.0),
                                  path if i % 2 == 0 else other, 3.0)
                for i in range(6)]
        d_s, d_p, c_s, c_p, _ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert c_s.admitted == c_p.admitted

    def test_duplicate_name_within_batch(self):
        net = workload(2)
        reqs = make_requests(2, 6)
        clone = ConnectionRequest("new0", reqs[1].bucket, reqs[0].path,
                                  100.0)
        reqs.append(clone)  # same name, same component as new0
        d_s, d_p, c_s, c_p, _ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert "duplicate flow name" in d_p[-1].reason

    def test_duplicate_of_baseline_flow(self):
        net = workload(4)
        existing = next(iter(net.flows))
        reqs = make_requests(4, 5)
        reqs.append(ConnectionRequest(existing,
                                      TokenBucket(0.5, 0.01, peak=1.0),
                                      (0, 1), 100.0))
        d_s, d_p, *_ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert not d_p[-1].admitted
        assert "duplicate flow name" in d_p[-1].reason

    def test_unknown_server_request(self):
        net = workload(6)
        reqs = make_requests(6, 5)
        reqs.append(ConnectionRequest("ghost",
                                      TokenBucket(0.5, 0.01, peak=1.0),
                                      (0, 777), 100.0))
        d_s, d_p, *_ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert "unknown server" in d_p[-1].reason

    def test_overload_rejection(self):
        net = workload(7)
        reqs = make_requests(7, 5)
        # rho near capacity: with_flow passes, stability check trips
        reqs.append(ConnectionRequest("hog",
                                      TokenBucket(0.5, 0.97, peak=1.0),
                                      (0, 1), 100.0))
        d_s, d_p, *_ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert d_p[-1].reason.startswith("overload:")


class TestFallbacks:
    def test_single_group_returns_none(self):
        net = workload(1)
        path = tuple(range(0, SPC))
        reqs = [ConnectionRequest(f"x{i}", TokenBucket(0.5, 0.02, peak=1.0),
                                  path, 100.0) for i in range(4)]
        ctrl = AdmissionController(net, DecomposedAnalysis())
        assert plan_batch(ctrl, reqs, workers=2,
                          ctx=AnalysisContext()) is None
        # ... and admit_batch still answers correctly through the loop
        d_s, d_p, c_s, c_p, _ = run_both(net, reqs)
        assert decisions_equal(d_s, d_p)
        assert c_s.admitted == c_p.admitted

    def test_deadline_ctx_returns_none(self):
        net = workload(1)
        ctrl = AdmissionController(net, DecomposedAnalysis())
        ctx = AnalysisContext().with_deadline(Deadline(30.0, "batch"))
        assert plan_batch(ctrl, make_requests(1, 4), workers=2,
                          ctx=ctx) is None

    def test_unstable_baseline_returns_none(self):
        net = workload(1)
        from repro.network import Flow
        hog = Flow("hog", TokenBucket(0.5, 0.96, peak=1.0), (0, 1))
        unstable_ish = net.with_flow(hog)  # near/over the edge
        ctrl = AdmissionController(unstable_ish, DecomposedAnalysis())
        result = plan_batch(ctrl, make_requests(1, 4), workers=2,
                            ctx=AnalysisContext())
        # either the baseline is outright unstable (None) or it still
        # plans; both are fine — what matters is serial equivalence
        if result is None:
            return
        d_s, d_p, *_ = run_both(unstable_ish, make_requests(1, 4))
        assert decisions_equal(d_s, d_p)

    def test_baseline_deadline_violation_returns_none(self):
        net = workload(1, deadline_slack=0.5)  # every flow already late
        ctrl = AdmissionController(net, DecomposedAnalysis())
        assert plan_batch(ctrl, make_requests(1, 4), workers=2,
                          ctx=AnalysisContext()) is None

    def test_non_decomposed_primary_returns_none(self):
        from repro.core.integrated import IntegratedAnalysis
        net = workload(1)
        ctrl = AdmissionController(net, IntegratedAnalysis())
        assert plan_batch(ctrl, make_requests(1, 4), workers=2,
                          ctx=AnalysisContext()) is None

    def test_gated_off_primary_returns_none(self):
        net = workload(1)
        ctrl = AdmissionController(net, DecomposedAnalysis(),
                                   analyzer_gate=lambda a: False)
        assert plan_batch(ctrl, make_requests(1, 4), workers=2,
                          ctx=AnalysisContext()) is None


class TestEngineSeeding:
    def test_batch_seeds_engine_cache(self):
        net = workload(3)
        ctrl = AdmissionController(net, DecomposedAnalysis(),
                                   incremental=True)
        ctx = AnalysisContext(metrics=MetricsRegistry())
        reqs = make_requests(3, 8)
        decisions = ctrl.admit_batch(reqs, workers=3, ctx=ctx)
        assert ctx.metrics.get("parallel.batch_groups") >= 2
        assert any(d.admitted for d in decisions)
        # the engine answer over the committed network must still be
        # bit-identical to a cold analysis (seeded cache changes cost,
        # never bits)
        engine_report = ctrl.engine.run(ctrl.network, AnalysisContext())
        cold = DecomposedAnalysis().analyze(ctrl.network)
        assert reports_identical(engine_report, cold)

    def test_seed_cache_first_write_wins(self):
        from repro.engine import IncrementalEngine
        net = workload(3)
        engine = IncrementalEngine(DecomposedAnalysis(), net)
        engine.query()  # warm
        # seeding a key that exists must not overwrite
        added = engine.seed_cache([(b"nonexistent-key", object(), 0.1)])
        assert added == 1
        assert engine.seed_cache([(b"nonexistent-key", object(),
                                   0.2)]) == 0
