"""Unit tests for admission control (the paper's motivating application)."""

import math
import time

import pytest

from repro.admission.controller import AdmissionController
from repro.admission.requests import AdmissionDecision, ConnectionRequest
from repro.analysis.base import Analyzer
from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import AdmissionError, AnalysisError
from repro.network.flow import Flow
from repro.network.topology import Network, ServerSpec
from repro.resilience.faults import ServerDegradation, ServerFailure


class FailingAnalyzer(Analyzer):
    """Raises on every analysis (a broken primary)."""

    name = "failing"

    def __init__(self, exc_type=AnalysisError):
        self.exc_type = exc_type
        self.calls = 0

    def analyze(self, network):
        self.calls += 1
        raise self.exc_type("deliberately broken")


class SlowAnalyzer(Analyzer):
    """Sleeps past any reasonable budget before answering."""

    name = "slow"

    def __init__(self, delay=5.0):
        self.delay = delay

    def analyze(self, network):
        time.sleep(self.delay)
        return DecomposedAnalysis().analyze(network)


TB = TokenBucket(1.0, 0.1, peak=1.0)


def empty_net(n=2):
    return Network([ServerSpec(k) for k in range(1, n + 1)], [])


def request(name, deadline=20.0, rho=0.1, path=(1, 2)):
    # no peak limit: even a lone connection has a positive delay bound
    return ConnectionRequest(name, TokenBucket(1.0, rho), path, deadline)


class TestRequests:
    def test_valid(self):
        r = request("r")
        assert r.deadline == 20.0

    def test_rejects_empty_name(self):
        with pytest.raises(AdmissionError):
            ConnectionRequest("", TB, (1,), 5.0)

    def test_rejects_infinite_deadline(self):
        with pytest.raises(AdmissionError):
            ConnectionRequest("r", TB, (1,), math.inf)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(AdmissionError):
            ConnectionRequest("r", TB, (1,), 0.0)


class TestController:
    def test_admits_feasible(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a"))
        assert dec.admitted and "a" in ctl.network.flows
        assert math.isfinite(dec.new_flow_bound)

    def test_test_does_not_commit(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        assert ctl.test(request("a")).admitted
        assert "a" not in ctl.network.flows

    def test_rejects_tight_deadline(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a", deadline=1e-6))
        assert not dec.admitted
        assert "deadline violation" in dec.reason

    def test_rejects_overload(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("fat", rho=1.5))
        assert not dec.admitted and "overload" in dec.reason

    def test_rejects_duplicate_name(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        ctl.admit(request("a"))
        dec = ctl.admit(request("a"))
        assert not dec.admitted and "topology" in dec.reason

    def test_rejects_unknown_server(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a", path=(1, 99)))
        assert not dec.admitted

    def test_protects_existing_deadlines(self):
        ctl = AdmissionController(empty_net(1), DecomposedAnalysis())
        # alone, `first` has bound sigma/C = 1.0: exactly its deadline
        first = request("first", deadline=1.0, rho=0.1, path=(1,))
        assert ctl.admit(first).admitted
        # a second bursty connection would push `first` past 1.0
        second = request("second", deadline=50.0, rho=0.1, path=(1,))
        dec = ctl.admit(second)
        assert not dec.admitted
        assert "first" in dec.reason

    def test_release(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        ctl.admit(request("a"))
        ctl.release("a")
        assert "a" not in ctl.network.flows
        assert ctl.admitted == ()

    def test_release_unknown_raises(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        with pytest.raises(AdmissionError):
            ctl.release("ghost")

    def test_release_preexisting_flow_not_admitted_here(self):
        """A flow present in the network but never admitted through the
        controller must not be releasable (it is not ours to tear down)."""
        established = Flow("legacy", TokenBucket(1.0, 0.1), (1, 2))
        net = empty_net().with_flow(established)
        ctl = AdmissionController(net, DecomposedAnalysis())
        with pytest.raises(AdmissionError):
            ctl.release("legacy")
        assert "legacy" in ctl.network.flows  # untouched

    def test_admit_commits_the_analyzed_candidate(self):
        """admit reuses the decision's candidate network (no second
        with_flow reconstruction)."""
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a"))
        assert dec.candidate_network is not None
        assert ctl.network is dec.candidate_network

    def test_decision_reports_analyzer(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        assert ctl.admit(request("a")).analyzer == "decomposed"


class TestDegradedMode:
    def test_admit_is_atomic_under_raising_analyzer(self):
        """An analyzer crash mid-test leaves controller state unchanged."""
        ctl = AdmissionController(empty_net(),
                                  FailingAnalyzer(RuntimeError))
        before = ctl.network
        with pytest.raises(RuntimeError):
            ctl.admit(request("a"))
        assert ctl.network is before
        assert ctl.admitted == ()
        assert "a" not in ctl.network.flows

    def test_analysis_error_fails_closed_without_fallback(self):
        ctl = AdmissionController(empty_net(), FailingAnalyzer())
        dec = ctl.admit(request("a"))
        assert not dec.admitted
        assert "analysis failed" in dec.reason
        assert ctl.admitted == ()

    def test_fallback_chain_answers_on_analysis_error(self):
        primary = FailingAnalyzer()
        ctl = AdmissionController(empty_net(), primary,
                                  fallbacks=[DecomposedAnalysis()])
        dec = ctl.admit(request("a"))
        assert dec.admitted
        assert dec.analyzer == "decomposed"
        assert primary.calls == 1
        assert "a" in ctl.network.flows

    def test_budget_triggers_fallback(self):
        ctl = AdmissionController(empty_net(), SlowAnalyzer(delay=5.0),
                                  fallbacks=[DecomposedAnalysis()],
                                  analysis_budget=0.1)
        start = time.monotonic()
        dec = ctl.admit(request("a"))
        assert time.monotonic() - start < 4.0  # did not sit out the sleep
        assert dec.admitted and dec.analyzer == "decomposed"

    def test_whole_chain_failing_rejects(self):
        ctl = AdmissionController(empty_net(), FailingAnalyzer(),
                                  fallbacks=[FailingAnalyzer()])
        dec = ctl.admit(request("a"))
        assert not dec.admitted
        assert "every analyzer" in dec.reason

    def test_rejects_bad_budget(self):
        with pytest.raises(AdmissionError):
            AdmissionController(empty_net(), DecomposedAnalysis(),
                                analysis_budget=0.0)

    def test_primary_analyzer_property(self):
        primary = DecomposedAnalysis()
        ctl = AdmissionController(empty_net(), primary,
                                  fallbacks=[IntegratedAnalysis()])
        assert ctl.analyzer is primary


class TestSurvivabilityReport:
    def test_reports_over_admitted_connections(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        assert ctl.admit(request("a", deadline=20.0)).admitted
        report = ctl.survivability_report([ServerDegradation(1, 0.9),
                                           ServerFailure(1)])
        assert len(report.outcomes) == 2
        statuses = {v.flow: v.status
                    for v in report.outcomes[1].verdicts}
        assert statuses["a"] == "severed"

    def test_mild_fault_keeps_admitted_deadlines(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        assert ctl.admit(request("a", deadline=1e6)).admitted
        report = ctl.survivability_report(
            [ServerDegradation(1, 0.99)])
        assert report.survives


class TestCapacityGain:
    def test_integrated_admits_at_least_as_many(self):
        """The operational payoff: a tighter analysis admits more."""
        deadline = 14.0

        def make(k):
            return request(f"c{k}", deadline=deadline, rho=0.02,
                           path=(1, 2))

        n_dec = AdmissionController(empty_net(), DecomposedAnalysis()) \
            .admissible_count(make, max_tries=60)
        n_int = AdmissionController(empty_net(), IntegratedAnalysis()) \
            .admissible_count(make, max_tries=60)
        assert n_int >= n_dec
        assert n_dec >= 1

    def test_admissible_count_stops_on_rejection(self):
        ctl = AdmissionController(empty_net(1), DecomposedAnalysis())

        def make(k):
            return request(f"c{k}", deadline=3.0, rho=0.2, path=(1,))

        n = ctl.admissible_count(make, max_tries=10)
        assert 1 <= n < 10
