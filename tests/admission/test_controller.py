"""Unit tests for admission control (the paper's motivating application)."""

import math

import pytest

from repro.admission.controller import AdmissionController
from repro.admission.requests import AdmissionDecision, ConnectionRequest
from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.errors import AdmissionError
from repro.network.topology import Network, ServerSpec


TB = TokenBucket(1.0, 0.1, peak=1.0)


def empty_net(n=2):
    return Network([ServerSpec(k) for k in range(1, n + 1)], [])


def request(name, deadline=20.0, rho=0.1, path=(1, 2)):
    # no peak limit: even a lone connection has a positive delay bound
    return ConnectionRequest(name, TokenBucket(1.0, rho), path, deadline)


class TestRequests:
    def test_valid(self):
        r = request("r")
        assert r.deadline == 20.0

    def test_rejects_empty_name(self):
        with pytest.raises(AdmissionError):
            ConnectionRequest("", TB, (1,), 5.0)

    def test_rejects_infinite_deadline(self):
        with pytest.raises(AdmissionError):
            ConnectionRequest("r", TB, (1,), math.inf)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(AdmissionError):
            ConnectionRequest("r", TB, (1,), 0.0)


class TestController:
    def test_admits_feasible(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a"))
        assert dec.admitted and "a" in ctl.network.flows
        assert math.isfinite(dec.new_flow_bound)

    def test_test_does_not_commit(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        assert ctl.test(request("a")).admitted
        assert "a" not in ctl.network.flows

    def test_rejects_tight_deadline(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a", deadline=1e-6))
        assert not dec.admitted
        assert "deadline violation" in dec.reason

    def test_rejects_overload(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("fat", rho=1.5))
        assert not dec.admitted and "overload" in dec.reason

    def test_rejects_duplicate_name(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        ctl.admit(request("a"))
        dec = ctl.admit(request("a"))
        assert not dec.admitted and "topology" in dec.reason

    def test_rejects_unknown_server(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        dec = ctl.admit(request("a", path=(1, 99)))
        assert not dec.admitted

    def test_protects_existing_deadlines(self):
        ctl = AdmissionController(empty_net(1), DecomposedAnalysis())
        # alone, `first` has bound sigma/C = 1.0: exactly its deadline
        first = request("first", deadline=1.0, rho=0.1, path=(1,))
        assert ctl.admit(first).admitted
        # a second bursty connection would push `first` past 1.0
        second = request("second", deadline=50.0, rho=0.1, path=(1,))
        dec = ctl.admit(second)
        assert not dec.admitted
        assert "first" in dec.reason

    def test_release(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        ctl.admit(request("a"))
        ctl.release("a")
        assert "a" not in ctl.network.flows
        assert ctl.admitted == ()

    def test_release_unknown_raises(self):
        ctl = AdmissionController(empty_net(), DecomposedAnalysis())
        with pytest.raises(AdmissionError):
            ctl.release("ghost")


class TestCapacityGain:
    def test_integrated_admits_at_least_as_many(self):
        """The operational payoff: a tighter analysis admits more."""
        deadline = 14.0

        def make(k):
            return request(f"c{k}", deadline=deadline, rho=0.02,
                           path=(1, 2))

        n_dec = AdmissionController(empty_net(), DecomposedAnalysis()) \
            .admissible_count(make, max_tries=60)
        n_int = AdmissionController(empty_net(), IntegratedAnalysis()) \
            .admissible_count(make, max_tries=60)
        assert n_int >= n_dec
        assert n_dec >= 1

    def test_admissible_count_stops_on_rejection(self):
        ctl = AdmissionController(empty_net(1), DecomposedAnalysis())

        def make(k):
            return request(f"c{k}", deadline=3.0, rho=0.2, path=(1,))

        n = ctl.admissible_count(make, max_tries=10)
        assert 1 <= n < 10
