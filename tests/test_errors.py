"""Unit tests for the exception hierarchy and structured attributes."""

import pytest

from repro.errors import (
    AdmissionError,
    AnalysisError,
    AnalysisTimeoutError,
    CurveError,
    FlowError,
    InstabilityError,
    ReproError,
    ResilienceError,
    SimulationError,
    TopologyError,
)
from repro.network.tandem import build_tandem
from repro.network.topology import Network, ServerSpec


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        CurveError, InstabilityError, TopologyError, FlowError,
        AnalysisError, AnalysisTimeoutError, SimulationError,
        AdmissionError, ResilienceError,
    ])
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_timeout_is_an_analysis_error(self):
        # degraded-mode admission catches AnalysisError to trigger
        # fallbacks; a blown budget must be caught by the same clause
        assert issubclass(AnalysisTimeoutError, AnalysisError)


class TestInstabilityAttributes:
    def test_carries_rate_and_capacity(self):
        net = build_tandem(2, 0.5)
        overloaded = net.replace_server(ServerSpec(1, 0.1))
        with pytest.raises(InstabilityError) as ei:
            overloaded.check_stability()
        err = ei.value
        assert err.rate == pytest.approx(
            sum(f.bucket.rho for f in overloaded.flows_at(1)))
        assert err.capacity == pytest.approx(0.1)
        assert err.rate >= err.capacity

    def test_defaults_to_none(self):
        err = InstabilityError("plain")
        assert err.rate is None and err.capacity is None


class TestTimeoutAttributes:
    def test_carries_budget_and_elapsed(self):
        err = AnalysisTimeoutError("slow", budget=0.5, elapsed=0.73)
        assert err.budget == 0.5
        assert err.elapsed == 0.73

    def test_defaults_to_none(self):
        err = AnalysisTimeoutError("slow")
        assert err.budget is None and err.elapsed is None


class TestResilienceAttributes:
    def test_carries_scenario(self):
        err = ResilienceError("bad", scenario="server 2 failed")
        assert err.scenario == "server 2 failed"

    def test_defaults_to_none(self):
        assert ResilienceError("bad").scenario is None


class TestSingleClauseCatch:
    def test_network_errors_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            Network([ServerSpec(1), ServerSpec(1)], [])
