"""Unit tests for the discrete-event network simulator."""

import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import SimulationError
from repro.network.flow import Flow
from repro.network.tandem import CONNECTION0, build_tandem
from repro.network.topology import Discipline, Network, ServerSpec
from repro.sim.simulator import NetworkSimulator, simulate_greedy
from repro.sim.sources import GreedySource


TB = TokenBucket(1.0, 0.25, peak=1.0)


class TestBasics:
    def test_single_packet_transit_time(self):
        # one packet of size 0.5 through two unit servers: 2 x 0.5
        tb = TokenBucket(0.5, 0.001, peak=1.0)
        net = Network([ServerSpec(1), ServerSpec(2)],
                      [Flow("f", tb, [1, 2])])
        src = GreedySource(tb, 0.5)
        res = NetworkSimulator(net, {"f": src}).run(0.5)
        assert res.stats["f"].count >= 1
        # first packet: no queueing, pure transmission 0.5 per hop
        assert res.stats["f"].max_delay >= 1.0 - 1e-9

    def test_missing_source_rejected(self):
        net = build_tandem(2, 0.5)
        with pytest.raises(SimulationError):
            NetworkSimulator(net, {})

    def test_gr_servers_rejected(self):
        net = Network(
            [ServerSpec(1, 1.0, Discipline.GUARANTEED_RATE)],
            [Flow("f", TB, [1])])
        with pytest.raises(SimulationError):
            NetworkSimulator(net, {"f": GreedySource(TB, 0.1)})

    def test_all_emitted_packets_complete(self):
        res = simulate_greedy(build_tandem(2, 0.5), horizon=20.0,
                              packet_size=0.1)
        assert res.packets_in_flight == 0
        assert res.packets_completed > 0

    def test_backlog_recorded(self):
        res = simulate_greedy(build_tandem(2, 0.8), horizon=20.0,
                              packet_size=0.1)
        assert max(res.max_backlog.values()) > 0

    def test_invalid_horizon(self):
        net = build_tandem(1, 0.5)
        sim = NetworkSimulator(
            net, {n: GreedySource(f.bucket, 0.1)
                  for n, f in net.flows.items()})
        with pytest.raises(ValueError):
            sim.run(0.0)


class TestFifoBehaviour:
    def test_fifo_order_preserved_per_flow(self):
        # completion order of a flow's packets must follow emission order
        net = build_tandem(2, 0.7)
        res = simulate_greedy(net, horizon=30.0, packet_size=0.1)
        # if FIFO were violated, delays could go negative after diff of
        # completion times; instead assert mean <= max and count sane
        s = res.stats[CONNECTION0]
        assert 0 < s.mean_delay <= s.max_delay

    def test_delays_nonnegative(self):
        res = simulate_greedy(build_tandem(3, 0.6), horizon=30.0,
                              packet_size=0.1)
        for s in res.stats.values():
            if s.count:
                assert s.mean_delay >= 0

    def test_higher_load_higher_delay(self):
        lo = simulate_greedy(build_tandem(2, 0.3), horizon=40.0,
                             packet_size=0.1)
        hi = simulate_greedy(build_tandem(2, 0.9), horizon=40.0,
                             packet_size=0.1)
        assert hi.max_delay(CONNECTION0) > lo.max_delay(CONNECTION0)


class TestStaticPrioritySim:
    def test_priority_beats_fifo_position(self):
        servers = [ServerSpec("s", 1.0, Discipline.STATIC_PRIORITY)]
        hi = Flow("hi", TB, ["s"], priority=0)
        lo = Flow("lo", TB, ["s"], priority=1)
        net = Network(servers, [hi, lo])
        sources = {"hi": GreedySource(TB, 0.1),
                   "lo": GreedySource(TB, 0.1)}
        res = NetworkSimulator(net, sources).run(30.0)
        assert res.stats["hi"].max_delay <= res.stats["lo"].max_delay


class TestResultApi:
    def test_observed_worst(self):
        res = simulate_greedy(build_tandem(2, 0.6), horizon=20.0,
                              packet_size=0.1)
        assert res.observed_worst() == max(
            s.max_delay for s in res.stats.values())

    def test_stagger(self):
        res = simulate_greedy(build_tandem(2, 0.6), horizon=20.0,
                              packet_size=0.1,
                              stagger={CONNECTION0: 5.0})
        assert res.stats[CONNECTION0].count > 0
