"""Unit tests for simulator queues."""

import pytest

from repro.sim.packet import Packet
from repro.sim.queues import FifoQueue, StaticPriorityQueue


def pkt(flow="f", seq=0, prio=0, size=1.0):
    return Packet(flow=flow, seq=seq, size=size, created=0.0,
                  priority=prio)


class TestPacket:
    def test_delay_requires_completion(self):
        p = pkt()
        with pytest.raises(ValueError):
            _ = p.delay
        p.completed = 3.5
        assert p.delay == 3.5


class TestFifoQueue:
    def test_order(self):
        q = FifoQueue()
        q.push(pkt(seq=0))
        q.push(pkt(seq=1))
        assert q.pop().seq == 0
        assert q.pop().seq == 1

    def test_len_and_backlog(self):
        q = FifoQueue()
        q.push(pkt(size=2.0))
        q.push(pkt(size=3.0))
        assert len(q) == 2
        assert q.backlog() == pytest.approx(5.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoQueue().pop()


class TestStaticPriorityQueue:
    def test_priority_order(self):
        q = StaticPriorityQueue()
        q.push(pkt(flow="lo", prio=5))
        q.push(pkt(flow="hi", prio=1))
        assert q.pop().flow == "hi"
        assert q.pop().flow == "lo"

    def test_fifo_within_level(self):
        q = StaticPriorityQueue()
        q.push(pkt(flow="a", seq=0, prio=1))
        q.push(pkt(flow="a", seq=1, prio=1))
        assert q.pop().seq == 0

    def test_len_across_levels(self):
        q = StaticPriorityQueue()
        q.push(pkt(prio=0))
        q.push(pkt(prio=3))
        assert len(q) == 2
        assert q.backlog() == pytest.approx(2.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            StaticPriorityQueue().pop()
