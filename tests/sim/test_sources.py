"""Unit tests for simulator traffic sources (conformance!)."""

import numpy as np
import pytest

from repro.curves.token_bucket import TokenBucket
from repro.errors import SimulationError
from repro.sim.sources import (
    GreedySource,
    OnOffSource,
    ShapedRandomSource,
    shape_times,
)


def assert_conformant(times, bucket, L, horizon):
    """Cumulative emissions must satisfy b(I) over a grid of windows."""
    times = np.asarray(times)
    b = bucket.constraint_curve()
    checkpoints = np.linspace(0.0, horizon, 60)
    for s in checkpoints:
        for e in checkpoints:
            if e <= s:
                continue
            sent = L * np.count_nonzero((times >= s) & (times < e))
            # half-open window (s, e): allowance b(e - s) (+ one packet
            # of slack for the packet *at* s boundary quantization)
            assert sent <= b(e - s) + L + 1e-9, (s, e, sent, b(e - s))


class TestShaper:
    def test_burst_then_spaced(self):
        tb = TokenBucket(1.0, 0.5, peak=2.0)
        cands = np.zeros(10)
        out = shape_times(cands, tb, 0.5)
        # bucket holds 2 packets instantly; peak spacing 0.25 after
        assert out[0] == 0.0
        assert np.all(np.diff(out) >= 0.25 - 1e-12)

    def test_tokens_never_negative(self):
        tb = TokenBucket(1.0, 0.25)
        out = shape_times(np.zeros(8), tb, 0.5)
        # after the initial 2 packets, each 0.5-packet needs 2s of tokens
        assert out[2] >= 2.0 - 1e-9

    def test_preserves_order(self):
        tb = TokenBucket(2.0, 1.0, peak=4.0)
        rng = np.random.default_rng(1)
        out = shape_times(rng.uniform(0, 10, 50), tb, 0.25)
        assert np.all(np.diff(out) >= -1e-12)

    def test_zero_rate_raises_when_depleted(self):
        tb = TokenBucket(1.0, 0.0)
        with pytest.raises(SimulationError):
            shape_times(np.zeros(5), tb, 0.5)


class TestGreedySource:
    def test_conformance(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        src = GreedySource(tb, 0.1)
        times = src.emission_times(40.0)
        assert_conformant(times, tb, 0.1, 40.0)

    def test_long_term_rate(self):
        tb = TokenBucket(1.0, 0.25, peak=1.0)
        times = GreedySource(tb, 0.1).emission_times(400.0)
        rate = 0.1 * times.size / 400.0
        assert rate == pytest.approx(0.25, rel=0.05)

    def test_start_offset(self):
        tb = TokenBucket(1.0, 0.25, peak=1.0)
        times = GreedySource(tb, 0.1, start=5.0).emission_times(20.0)
        assert times.size > 0 and times[0] >= 5.0

    def test_start_beyond_horizon_empty(self):
        tb = TokenBucket(1.0, 0.25)
        assert GreedySource(tb, 0.1, start=30.0) \
            .emission_times(20.0).size == 0

    def test_packet_bigger_than_bucket_rejected(self):
        with pytest.raises(SimulationError):
            GreedySource(TokenBucket(0.5, 0.1), 1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            GreedySource(TokenBucket(1.0, 0.1), 0.1, start=-1.0)


class TestRandomSources:
    def test_onoff_conformance(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        src = OnOffSource(tb, 0.1, mean_on=2.0, mean_off=3.0, seed=7)
        times = src.emission_times(50.0)
        assert_conformant(times, tb, 0.1, 50.0)

    def test_onoff_deterministic_given_seed(self):
        tb = TokenBucket(1.0, 0.2, peak=1.0)
        a = OnOffSource(tb, 0.1, seed=3).emission_times(30.0)
        b = OnOffSource(tb, 0.1, seed=3).emission_times(30.0)
        assert np.array_equal(a, b)

    def test_poisson_conformance(self):
        tb = TokenBucket(1.0, 0.3, peak=1.0)
        src = ShapedRandomSource(tb, 0.1, seed=11)
        times = src.emission_times(50.0)
        assert_conformant(times, tb, 0.1, 50.0)

    def test_poisson_seeds_differ(self):
        tb = TokenBucket(1.0, 0.3)
        a = ShapedRandomSource(tb, 0.1, seed=1).emission_times(30.0)
        b = ShapedRandomSource(tb, 0.1, seed=2).emission_times(30.0)
        assert a.size != b.size or not np.array_equal(a, b)
