"""Unit tests for adversarial source scheduling."""

import pytest

from repro.core.integrated import IntegratedAnalysis
from repro.network.tandem import CONNECTION0, build_tandem
from repro.sim.adversary import adversarial_stagger, simulate_adversarial
from repro.sim.simulator import simulate_greedy

PKT = 0.05


class TestStagger:
    def test_target_starts_at_zero(self, tandem4):
        st = adversarial_stagger(tandem4, CONNECTION0)
        assert st[CONNECTION0] == 0.0

    def test_downstream_crosses_start_later(self, tandem4):
        st = adversarial_stagger(tandem4, CONNECTION0)
        assert st["short_1"] == 0.0
        assert st["short_4"] > st["short_2"] > 0.0

    def test_all_flows_scheduled(self, tandem4):
        st = adversarial_stagger(tandem4, CONNECTION0)
        assert set(st) == set(tandem4.flows)

    def test_zero_fraction_is_synchronized(self, tandem4):
        st = adversarial_stagger(tandem4, CONNECTION0,
                                 front_fraction=0.0)
        assert all(v == 0.0 for v in st.values())

    def test_invalid_fraction(self, tandem4):
        with pytest.raises(ValueError):
            adversarial_stagger(tandem4, CONNECTION0, front_fraction=2.0)


class TestSimulateAdversarial:
    def test_still_sound(self):
        net = build_tandem(4, 0.8)
        bound = IntegratedAnalysis().analyze(net).delay_of(CONNECTION0)
        res = simulate_adversarial(net, CONNECTION0, horizon=120.0,
                                   packet_size=PKT)
        assert res.max_delay(CONNECTION0) <= bound + 4 * PKT + 1e-9

    def test_attacks_harder_than_synchronized(self):
        # on a multi-hop tandem at high load the staggered attack should
        # match or exceed the synchronized observation
        net = build_tandem(4, 0.8)
        sync = simulate_greedy(net, horizon=120.0, packet_size=PKT)
        adv = simulate_adversarial(net, CONNECTION0, horizon=120.0,
                                   packet_size=PKT)
        assert adv.max_delay(CONNECTION0) >= \
            sync.max_delay(CONNECTION0) - 2 * PKT
