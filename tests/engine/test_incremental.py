"""Unit tests for the incremental analysis engine."""

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.service_curve import ServiceCurveAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.engine import (
    DependencyGraph,
    IncrementalEngine,
    ResultCache,
    affected_cone,
    describe_report_difference,
    reports_identical,
)
from repro.errors import AnalysisError, EngineError
from repro.network.flow import Flow
from repro.network.generators import random_feedforward
from repro.network.topology import Network, ServerSpec


def tandem(n=4, capacity=10.0):
    return Network([ServerSpec(k, capacity=capacity)
                    for k in range(1, n + 1)], [])


def flow(name, path, rho=0.5, deadline=60.0):
    return Flow(name, TokenBucket(1.0, rho), tuple(path),
                deadline=deadline)


class TestEngineBasics:
    def test_query_matches_cold(self):
        net = tandem().with_flow(flow("a", [1, 2, 3]))
        cold = DecomposedAnalysis().analyze(net)
        eng = IncrementalEngine(DecomposedAnalysis(), net)
        assert reports_identical(eng.query(), cold)
        assert eng.stats.queries == 1 and eng.stats.misses > 0

    def test_repeated_query_is_memoized(self):
        net = tandem().with_flow(flow("a", [1, 2]))
        eng = IncrementalEngine(DecomposedAnalysis(), net)
        first = eng.query()
        misses = eng.stats.misses
        assert eng.query() is first
        assert eng.stats.misses == misses  # nothing recomputed

    def test_admit_release_roundtrip_hits_cache(self):
        net = tandem().with_flow(flow("a", [1, 2, 3, 4]))
        eng = IncrementalEngine(DecomposedAnalysis(), net)
        baseline = eng.query()
        eng.admit(flow("b", [2, 3]))
        eng.release("b")
        back = eng.query()
        assert reports_identical(back, baseline)
        assert eng.stats.hits > 0  # release returned to cached states

    def test_admit_is_transactional_on_topology_error(self):
        net = tandem()
        eng = IncrementalEngine(DecomposedAnalysis(), net)
        with pytest.raises(Exception):
            eng.admit(flow("bad", [1, 99]))  # unknown server
        assert eng.network is net

    def test_admit_batch_single_sweep(self):
        net = tandem().with_flow(flow("a", [1, 2]))
        eng = IncrementalEngine(DecomposedAnalysis(), net)
        eng.query()
        queries = eng.stats.queries
        report = eng.admit_batch([flow("b", [2, 3]), flow("c", [3, 4])])
        assert eng.stats.queries == queries + 1
        assert set(report.delays) == {"a", "b", "c"}
        assert len(eng.network.flows) == 3

    def test_stateless_engine_rejects_admit(self):
        eng = IncrementalEngine(DecomposedAnalysis())
        with pytest.raises(EngineError):
            eng.query()
        with pytest.raises(EngineError):
            eng.admit(flow("a", [1]))

    def test_engine_error_is_analysis_error(self):
        assert issubclass(EngineError, AnalysisError)

    def test_no_nested_engines(self):
        inner = IncrementalEngine(DecomposedAnalysis())
        with pytest.raises(EngineError):
            IncrementalEngine(inner)


class TestFallback:
    def test_unsupported_analyzer_falls_back_cold(self):
        net = tandem().with_flow(flow("a", [1, 2]))
        eng = IncrementalEngine(ServiceCurveAnalysis(), net)
        assert not eng.supports_incremental
        cold = ServiceCurveAnalysis().analyze(net)
        assert reports_identical(eng.query(), cold)
        assert eng.stats.fallbacks == 1
        assert eng.stats.misses == 0  # nothing went through the cache

    def test_config_change_invalidates_fast_reuse(self):
        net = tandem().with_flow(flow("a", [1, 2]))
        analyzer = DecomposedAnalysis()
        eng = IncrementalEngine(analyzer, net)
        eng.query()
        analyzer.capped_propagation = True
        capped = eng.query()
        cold = DecomposedAnalysis(capped_propagation=True).analyze(net)
        assert reports_identical(capped, cold)

    def test_self_check_mode_runs_clean(self):
        net = random_feedforward(seed=5, n_servers=6, n_flows=10)
        eng = IncrementalEngine(DecomposedAnalysis(), net,
                                self_check=True)
        eng.query()
        name = sorted(net.flows)[0]
        eng.release(name)
        eng.admit(net.flows[name])
        assert eng.stats.self_checks == 3


class TestIntegratedEngine:
    def test_integrated_query_matches_cold(self):
        net = random_feedforward(seed=9, n_servers=6, n_flows=8)
        cold = IntegratedAnalysis().analyze(net)
        eng = IncrementalEngine(IntegratedAnalysis(), net)
        assert reports_identical(eng.query(), cold)

    def test_integrated_release_matches_cold(self):
        net = random_feedforward(seed=9, n_servers=6, n_flows=8)
        eng = IncrementalEngine(IntegratedAnalysis(), net)
        eng.query()
        name = sorted(net.flows)[2]
        got = eng.release(name)
        cold = IntegratedAnalysis().analyze(net.without_flow(name))
        assert reports_identical(got, cold)


class TestDependencyGraph:
    def test_flows_at_and_closure(self):
        net = tandem(4).with_flow(flow("a", [1, 2])) \
                       .with_flow(flow("b", [3, 4]))
        dg = DependencyGraph(net)
        assert dg.flows_at(1) == {"a"}
        assert dg.flows_at(3) == {"b"}
        assert dg.downstream_closure([1]) == {1, 2}
        assert dg.servers_of(["a", "nope"]) == {1, 2}

    def test_affected_cone_covers_both_snapshots(self):
        old = tandem(4).with_flow(flow("a", [1, 2]))
        moved = flow("a", [3, 4])
        new = tandem(4).with_flow(moved)
        cone = affected_cone(DependencyGraph(old),
                             DependencyGraph(new),
                             [old.flows["a"], moved])
        assert cone == {1, 2, 3, 4}

    def test_cone_excludes_untouched_upstream(self):
        net = tandem(4).with_flow(flow("a", [1, 2, 3, 4]))
        dg = DependencyGraph(net)
        cone = affected_cone(dg, dg, [flow("x", [3])])
        assert cone == {3, 4}  # 1 and 2 stay clean


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put(b"a", 1, 0.1)
        cache.put(b"b", 2, 0.1)
        assert cache.get(b"a").value == 1  # refresh 'a'
        cache.put(b"c", 3, 0.1)
        assert b"b" not in cache and b"a" in cache
        assert cache.evictions == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestReportComparison:
    def test_identical_and_difference_description(self):
        net = tandem().with_flow(flow("a", [1, 2]))
        r1 = DecomposedAnalysis().analyze(net)
        r2 = DecomposedAnalysis().analyze(net)
        assert reports_identical(r1, r2)
        assert describe_report_difference(r1, r2) is None
        r3 = DecomposedAnalysis().analyze(
            net.with_flow(flow("b", [1, 2])))
        assert not reports_identical(r1, r3)
        assert "flow sets differ" in describe_report_difference(r1, r3)


class TestControllerIntegration:
    def test_incremental_controller_same_decisions(self):
        from repro.admission.controller import AdmissionController
        from repro.admission.requests import ConnectionRequest

        def make(k):
            return ConnectionRequest(
                f"c{k}", TokenBucket(1.0, 0.02, peak=1.0),
                (1, 2, 3, 4), 30.0)

        cold = AdmissionController(tandem(), DecomposedAnalysis())
        inc = AdmissionController(tandem(), DecomposedAnalysis(),
                                  incremental=True)
        assert inc.engine is not None and inc.engine_stats is not None
        n_cold = cold.admissible_count(make, max_tries=40)
        n_inc = inc.admissible_count(make, max_tries=40)
        assert n_cold == n_inc
        assert inc.engine_stats.queries > 0
        assert cold.engine is None and cold.engine_stats is None

    def test_cli_admit_incremental(self, capsys):
        from repro.cli import main

        rc = main(["admit", "--hops", "3", "--deadline", "25",
                   "--analyzer", "decomposed", "--incremental",
                   "--max", "20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "admitted" in out and "engine stats:" in out


class TestKernelFingerprint:
    """Kernel selection is part of the engine's memo identity.

    The engine fingerprints queries with the *effective* kernel (the
    context's if set, else the ambient one), and content keys carry
    the kernel captured at build time — switching kernels between
    queries must never replay results computed under the other one.
    """

    def _engine(self):
        net = tandem().with_flow(flow("a", [1, 2, 3, 4], rho=2.0))
        return IncrementalEngine(DecomposedAnalysis(), net)

    def test_ctx_kernel_separates_memo_entries(self):
        from repro.context import AnalysisContext

        eng = self._engine()
        exact = eng.query(ctx=AnalysisContext(kernel="exact"))
        grid = eng.query(ctx=AnalysisContext(kernel="grid"))
        # the grid backend pads its bounds: strictly looser somewhere
        assert all(grid.delay_of(n) >= exact.delay_of(n) - 1e-12
                   for n in exact.delays)
        assert any(grid.delay_of(n) > exact.delay_of(n) + 1e-9
                   for n in exact.delays)
        # switching back must reproduce the exact run bit-identically,
        # not replay the grid one
        again = eng.query(ctx=AnalysisContext(kernel="exact"))
        assert reports_identical(again, exact)

    def test_ambient_kernel_is_fingerprinted(self):
        from repro.curves.kernels import use_kernel

        eng = self._engine()
        exact = eng.query()
        with use_kernel("grid"):
            grid = eng.query()
        assert not reports_identical(grid, exact)
        # ambient and explicit selection share one memo identity
        from repro.context import AnalysisContext

        with use_kernel("grid"):
            again = eng.query(ctx=AnalysisContext(kernel="grid"))
        assert reports_identical(again, grid)
