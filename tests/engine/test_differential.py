"""Differential fuzz harness: engine reports == cold reports, exactly.

Seeded random admit/release sequences are replayed twice — once through
the :class:`~repro.engine.IncrementalEngine` and once with a cold
analyzer on the same network snapshots.  Every pair of
:class:`~repro.analysis.base.DelayReport` objects must be bit-identical
(``==`` on every float, not approximately equal).  This is the
enforcement of the engine's correctness contract for both Algorithm
Decomposed and Algorithm Integrated.
"""

import random

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.engine import (
    IncrementalEngine,
    describe_report_difference,
    reports_identical,
)
from repro.errors import AnalysisError, InstabilityError
from repro.network.flow import Flow
from repro.network.generators import random_feedforward


def random_ops(rng, base, n_ops, max_extra=8):
    """A seeded admit/release schedule against *base*'s server line.

    Yields ("admit", flow) / ("release", name) ops that are always
    legal for a controller that applies them in order.
    """
    servers = sorted(base.servers, key=str)
    live = set(base.flows)
    ops = []
    fresh = 0
    for _ in range(n_ops):
        removable = [n for n in sorted(live) if n.startswith("fz")]
        if removable and (len(removable) >= max_extra
                          or rng.random() < 0.4):
            name = rng.choice(removable)
            live.discard(name)
            ops.append(("release", name))
        else:
            start = rng.randrange(len(servers) - 1)
            length = rng.randint(2, min(4, len(servers) - start))
            path = tuple(servers[start:start + length])
            name = f"fz{fresh}"
            fresh += 1
            live.add(name)
            ops.append(("admit", Flow(
                name,
                TokenBucket(rng.uniform(0.2, 2.0),
                            rng.uniform(0.01, 0.1)),
                path, deadline=rng.uniform(20.0, 200.0))))
    return ops


def run_differential(analyzer_factory, seed, n_servers=8, n_flows=10,
                     n_ops=14):
    base = random_feedforward(seed=seed, n_servers=n_servers,
                              n_flows=n_flows, max_utilization=0.5)
    engine = IncrementalEngine(analyzer_factory(), base)
    cold = analyzer_factory()
    rng = random.Random(seed * 31 + 7)

    net = base
    for op in random_ops(rng, base, n_ops):
        if op[0] == "admit":
            candidate = net.with_flow(op[1])
            apply_engine = lambda: engine.admit(op[1])  # noqa: E731
        else:
            candidate = net.without_flow(op[1])
            apply_engine = lambda: engine.release(op[1])  # noqa: E731
        try:
            want = cold.analyze(candidate)
        except (AnalysisError, InstabilityError) as exc:
            # overload etc.: the engine must fail the same way and
            # leave its state untouched
            with pytest.raises(type(exc)):
                apply_engine()
            assert engine.network is not candidate
            continue
        got = apply_engine()
        assert reports_identical(got, want), (
            f"op {op[0]} diverged: "
            f"{describe_report_difference(got, want)}")
        net = candidate
    assert engine.stats.reused > 0  # the run actually exercised reuse


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_decomposed_differential(seed):
    run_differential(DecomposedAnalysis, seed)


@pytest.mark.parametrize("seed", [1, 2])
def test_integrated_differential(seed):
    run_differential(IntegratedAnalysis, seed, n_servers=6,
                     n_flows=6, n_ops=8)


def test_capped_decomposed_differential():
    run_differential(lambda: DecomposedAnalysis(capped_propagation=True),
                     seed=5)
