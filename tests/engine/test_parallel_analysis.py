"""ParallelAnalysis: partitioning, merging, and bit-identity vs serial.

The determinism contract under test: for every network the fast path
accepts, the pool-parallel report equals the serial
:class:`DecomposedAnalysis` report *bit for bit*
(:func:`repro.engine.reports_identical` — algorithm, every bound,
every metadata entry).  Fallback paths must be silent drop-ins.
"""

import math

import pytest

from repro.analysis.decomposed import DecomposedAnalysis
from repro.analysis.base import DelayReport
from repro.context import AnalysisContext, MetricsRegistry
from repro.core.integrated import IntegratedAnalysis
from repro.curves.token_bucket import TokenBucket
from repro.engine import (
    ParallelAnalysis,
    merge_reports,
    partition_components,
    reports_identical,
    subnetwork,
)
from repro.errors import EngineError
from repro.network import Flow, Network, ServerSpec
from repro.network.generators import random_feedforward, random_multicomponent
from repro.network.tandem import build_tandem


def two_component_net() -> Network:
    bucket = TokenBucket(1.0, 0.2, peak=1.0)
    servers = [ServerSpec(k) for k in range(4)]
    flows = [Flow("left", bucket, (0, 1)),
             Flow("right", bucket, (2, 3))]
    return Network(servers, flows)


class TestPartition:
    def test_components_cover_every_flow_path(self):
        net = random_multicomponent(5, n_components=3,
                                    servers_per_component=4,
                                    flows_per_component=6)
        comps = partition_components(net)
        assert len(comps) >= 3  # sparse components can split further
        for flow in net.flows.values():
            owners = [c for c in comps if flow.path[0] in c]
            assert len(owners) == 1
            assert set(flow.path) <= set(owners[0])

    def test_flowless_servers_excluded(self):
        net = two_component_net()
        lonely = Network(list(net.servers.values()) + [ServerSpec(99)],
                         list(net.flows.values()))
        comps = partition_components(lonely)
        assert all(99 not in comp for comp in comps)
        assert len(comps) == 2

    def test_deterministic_order(self):
        net = random_multicomponent(8, n_components=4)
        assert partition_components(net) == partition_components(net)

    def test_servers_keep_insertion_order(self):
        net = random_multicomponent(2, n_components=2,
                                    servers_per_component=5)
        order = list(net.servers)
        for comp in partition_components(net):
            assert list(comp) == [s for s in order if s in set(comp)]


class TestSubnetwork:
    def test_induced_subnet_keeps_flows(self):
        net = two_component_net()
        sub = subnetwork(net, (0, 1))
        assert list(sub.servers) == [0, 1]
        assert list(sub.flows) == ["left"]

    def test_boundary_crossing_flow_rejected(self):
        net = two_component_net()
        with pytest.raises(EngineError, match="crosses the component"):
            subnetwork(net, (0,))  # "left" has a hop outside


class TestMergeReports:
    def test_missing_flow_rejected(self):
        net = two_component_net()
        partial = DelayReport(algorithm="decomposed",
                              delays={"left": 1.0}, meta={})
        with pytest.raises(EngineError, match="no component report"):
            merge_reports(net, "decomposed", [partial])

    def test_scalar_meta_disagreement_rejected(self):
        net = two_component_net()
        a = DelayReport(algorithm="decomposed", delays={"left": 1.0},
                        meta={"mode": "capped"})
        b = DelayReport(algorithm="decomposed", delays={"right": 1.0},
                        meta={"mode": "uncapped"})
        with pytest.raises(EngineError, match="disagree on meta"):
            merge_reports(net, "decomposed", [a, b])

    def test_dict_meta_unioned(self):
        net = two_component_net()
        a = DelayReport(algorithm="decomposed", delays={"left": 1.0},
                        meta={"local_delay": {0: 0.5, 1: 0.5}})
        b = DelayReport(algorithm="decomposed", delays={"right": 2.0},
                        meta={"local_delay": {2: 1.0, 3: 1.0}})
        merged = merge_reports(net, "decomposed", [a, b])
        assert merged.meta["local_delay"] == {0: 0.5, 1: 0.5,
                                              2: 1.0, 3: 1.0}
        assert list(merged.delays) == ["left", "right"]


class TestParallelAnalysis:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_fuzz(self, seed, workers):
        net = random_multicomponent(seed, n_components=4,
                                    servers_per_component=4,
                                    flows_per_component=6)
        serial = DecomposedAnalysis().analyze(net)
        pa = ParallelAnalysis(DecomposedAnalysis(), workers=workers)
        assert reports_identical(serial, pa.analyze(net))
        assert pa.parallel_runs == 1 and pa.serial_fallbacks == 0

    def test_single_component_falls_back(self):
        net = build_tandem(4, 0.5, 1.0)
        pa = ParallelAnalysis(DecomposedAnalysis(), workers=4)
        report = pa.analyze(net)
        assert pa.serial_fallbacks == 1 and pa.parallel_runs == 0
        assert reports_identical(report, DecomposedAnalysis().analyze(net))

    def test_workers_one_falls_back(self):
        net = random_multicomponent(1, n_components=3)
        pa = ParallelAnalysis(DecomposedAnalysis(), workers=1)
        report = pa.analyze(net)
        assert pa.serial_fallbacks == 1
        assert reports_identical(report, DecomposedAnalysis().analyze(net))

    def test_integrated_falls_back_but_matches(self):
        net = random_multicomponent(7, n_components=2,
                                    servers_per_component=3,
                                    flows_per_component=4)
        pa = ParallelAnalysis(IntegratedAnalysis(), workers=2)
        report = pa.analyze(net)
        assert pa.serial_fallbacks == 1 and pa.parallel_runs == 0
        assert reports_identical(report, IntegratedAnalysis().analyze(net))

    def test_nesting_rejected(self):
        inner = ParallelAnalysis(DecomposedAnalysis())
        with pytest.raises(EngineError, match="nest"):
            ParallelAnalysis(inner)

    def test_reports_same_algorithm_name(self):
        net = random_multicomponent(3, n_components=2)
        pa = ParallelAnalysis(DecomposedAnalysis(), workers=2)
        assert pa.analyze(net).algorithm == \
            DecomposedAnalysis().analyze(net).algorithm

    def test_metrics_and_counters_flow_to_parent(self):
        net = random_multicomponent(4, n_components=3)
        ctx = AnalysisContext(metrics=MetricsRegistry())
        ParallelAnalysis(DecomposedAnalysis(), workers=2).analyze(
            net, ctx=ctx)
        counters = ctx.metrics.as_dict()
        assert counters["parallel.runs"] == 1.0
        assert counters["parallel.components"] >= 3.0

    def test_single_flow_component_bounds_finite(self):
        net = random_multicomponent(6, n_components=2,
                                    servers_per_component=2,
                                    flows_per_component=2)
        report = ParallelAnalysis(DecomposedAnalysis(),
                                  workers=2).analyze(net)
        assert all(math.isfinite(report.delay_of(name))
                   for name in net.flows)

    def test_mixed_sizes_fuzz(self):
        for seed in range(3):
            net = random_multicomponent(100 + seed,
                                        n_components=2 + seed,
                                        servers_per_component=3,
                                        flows_per_component=3 + seed)
            serial = DecomposedAnalysis().analyze(net)
            par = ParallelAnalysis(DecomposedAnalysis(),
                                   workers=3).analyze(net)
            assert reports_identical(serial, par)

    def test_plain_feedforward_matches_whatever_path(self):
        # single line of servers: usually one component -> serial path;
        # the wrapper must stay a drop-in either way
        net = random_feedforward(9, n_servers=6, n_flows=10)
        serial = DecomposedAnalysis().analyze(net)
        par = ParallelAnalysis(DecomposedAnalysis(), workers=2).analyze(net)
        assert reports_identical(serial, par)
