"""Unit tests for the Figure-4 crossover locator."""

import math

import pytest

from repro.analysis.closed_forms import (
    decomposed_delay,
    service_curve_delay,
)
from repro.eval.crossover import (
    crossover_table,
    find_crossover,
)


class TestFindCrossover:
    def test_small_tandem_has_no_crossover(self):
        # at n=2 the service-curve method never beats decomposition
        p = find_crossover(2)
        assert not p.exists
        assert p.dominant == "decomposed"

    def test_very_long_tandem_sc_dominates(self):
        p = find_crossover(16)
        assert not p.exists
        assert p.dominant == "service_curve"

    def test_large_tandem_has_crossover(self):
        p = find_crossover(8)
        assert p.exists
        assert 0.0 < p.load < 1.0

    def test_crossover_is_a_root(self):
        p = find_crossover(8)
        gap = service_curve_delay(8, p.load) - decomposed_delay(8, p.load)
        assert gap == pytest.approx(0.0, abs=1e-5)

    def test_ordering_around_crossover(self):
        p = find_crossover(8)
        below, above = p.load * 0.9, p.load + (1 - p.load) * 0.1
        assert service_curve_delay(8, below) < decomposed_delay(8, below)
        assert service_curve_delay(8, above) > decomposed_delay(8, above)

    def test_compounding_grows_with_size(self):
        # bigger networks keep the service-curve advantage longer
        loads = []
        for n in (6, 8, 12):
            p = find_crossover(n)
            assert p.exists, n
            loads.append(p.load)
        assert loads == sorted(loads)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            find_crossover(0)


class TestTable:
    def test_renders_all_regimes(self):
        out = crossover_table((2, 8, 16))
        assert "decomposed tighter everywhere" in out
        assert "service_curve tighter below U*" in out
        assert "service_curve tighter everywhere" in out
