"""Unit tests for the ASCII chart renderer."""

import math

import pytest

from repro.eval.ascii_chart import render_chart
from repro.eval.figures import Series


def series(label="s", values=(1.0, 2.0, 4.0)):
    return Series(label, (0.1, 0.5, 0.9), tuple(values))


class TestRenderChart:
    def test_contains_markers_and_legend(self):
        out = render_chart([series("alpha"), series("beta", (4, 2, 1))])
        assert "o=alpha" in out and "x=beta" in out
        assert "o" in out.splitlines()[0] or any(
            "o" in ln for ln in out.splitlines())

    def test_title(self):
        out = render_chart([series()], title="My plot")
        assert out.splitlines()[0] == "My plot"

    def test_log_scale(self):
        out = render_chart([series(values=(1.0, 10.0, 100.0))],
                           log_y=True)
        assert "100.00" in out

    def test_monotone_series_marks_descend(self):
        out = render_chart([series(values=(1.0, 2.0, 3.0))], width=30,
                           height=9)
        rows = [i for i, ln in enumerate(out.splitlines())
                if "o" in ln and "|" in ln]
        # increasing values -> later loads appear on higher (smaller
        # index) rows; first marker row above last marker row
        assert rows == sorted(rows)

    def test_empty(self):
        assert "no series" in render_chart([])

    def test_all_infinite(self):
        s = Series("s", (0.1, 0.9), (math.inf, math.inf))
        assert "no finite data" in render_chart([s])

    def test_mismatched_axes(self):
        a = Series("a", (0.1,), (1.0,))
        b = Series("b", (0.2,), (1.0,))
        with pytest.raises(ValueError):
            render_chart([a, b])

    def test_too_many_series(self):
        many = [series(f"s{i}") for i in range(9)]
        with pytest.raises(ValueError):
            render_chart(many)

    def test_flat_series_does_not_crash(self):
        out = render_chart([series(values=(2.0, 2.0, 2.0))])
        assert "|" in out
