"""Unit tests for the experiment runner and shape checks."""

from repro.eval.runner import run_all, shape_checks
from repro.eval.workloads import Sweep


SMALL = Sweep(loads=(0.3, 0.9), hops=(2, 4))


class TestRunner:
    def test_run_all_returns_every_figure(self):
        figs = run_all(SMALL)
        assert set(figs) == {"FIG4", "FIG5", "FIG6"}

    def test_shape_checks_pass_on_small_sweep(self):
        figs = run_all(SMALL)
        checks = shape_checks(figs)
        assert len(checks) == 3
        for c in checks:
            assert c.holds, f"{c.claim}: {c.detail}"
