"""Unit tests for the sensitivity (elasticity) analysis."""

import pytest

from repro.eval.sensitivity import elasticities


class TestElasticities:
    def test_sigma_elasticity_is_one(self):
        # every bound is homogeneous of degree 1 in sigma
        for name in ("decomposed", "integrated"):
            e = elasticities(name, 3, 0.6)
            assert e.wrt_sigma == pytest.approx(1.0, abs=1e-6)

    def test_load_elasticity_positive(self):
        e = elasticities("decomposed", 3, 0.6)
        assert e.wrt_load > 0

    def test_hops_elasticity_positive_and_superlinear_for_decomposed(self):
        # decomposition compounds bursts downstream: adding hops grows
        # the bound faster than linearly
        e = elasticities("decomposed", 4, 0.7)
        assert e.wrt_hops > 1.0

    def test_integrated_less_load_sensitive_than_service_curve(self):
        e_int = elasticities("integrated", 3, 0.8)
        e_sc = elasticities("service_curve", 3, 0.8)
        assert e_int.wrt_load < e_sc.wrt_load

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            elasticities("decomposed", 3, 1.5)
        with pytest.raises(ValueError):
            elasticities("decomposed", 3, 0.5, rel_step=0.9)
