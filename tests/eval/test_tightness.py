"""Unit tests for the tightness study."""

import math

import pytest

from repro.eval.tightness import (
    TightnessRow,
    default_topologies,
    render_tightness,
    tightness_study,
)
from repro.network.tandem import build_tandem


class TestTightnessStudy:
    def test_small_study_runs_and_is_sound(self):
        rows = tightness_study(
            {"tandem(2,0.8)": lambda: build_tandem(2, 0.8)},
            horizon=60.0)
        assert len(rows) == 1
        r = rows[0]
        assert 0 < r.observed <= r.integrated + 0.2
        assert r.integrated <= r.decomposed

    def test_ratios(self):
        r = TightnessRow("t", "f", observed=5.0, integrated=10.0,
                         decomposed=20.0)
        assert r.integrated_ratio == pytest.approx(0.5)
        assert r.decomposed_ratio == pytest.approx(0.25)

    def test_render(self):
        r = TightnessRow("t", "f", 5.0, 10.0, 20.0)
        out = render_tightness([r])
        assert "50.0%" in out and "25.0%" in out

    def test_zero_bound_ratio_is_nan_not_zero(self):
        # a 0.0 ratio would read as "infinitely tight"; an undefined
        # ratio must be NaN
        r = TightnessRow("t", "f", observed=5.0, integrated=0.0,
                         decomposed=20.0)
        assert math.isnan(r.integrated_ratio)
        assert r.decomposed_ratio == pytest.approx(0.25)

    def test_nan_bound_ratio_is_nan(self):
        r = TightnessRow("t", "f", observed=5.0,
                         integrated=math.nan, decomposed=math.nan)
        assert math.isnan(r.integrated_ratio)
        assert math.isnan(r.decomposed_ratio)

    def test_render_undefined_ratio_as_na(self):
        r = TightnessRow("t", "f", observed=5.0, integrated=0.0,
                         decomposed=20.0)
        out = render_tightness([r])
        assert "n/a" in out and "25.0%" in out
        assert "0.0%" not in out

    def test_default_suite_shape(self):
        topo = default_topologies()
        assert len(topo) >= 4
        for factory in topo.values():
            net = factory()
            net.check_stability()
