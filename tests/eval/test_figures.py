"""Unit tests for figure regeneration (small sweeps for speed)."""

import pytest

from repro.eval.figures import (
    FIGURES,
    Series,
    delay_series,
    figure4,
    figure5,
    figure6,
)
from repro.eval.workloads import Sweep


SMALL = Sweep(loads=(0.3, 0.7), hops=(2, 3))


class TestSeries:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            Series("s", (0.1, 0.2), (1.0,))

    def test_delay_series_shape(self):
        s = delay_series("decomposed", 2, (0.2, 0.6))
        assert s.loads == (0.2, 0.6)
        assert len(s.values) == 2
        assert s.values[0] < s.values[1]

    def test_unknown_analyzer(self):
        with pytest.raises(ValueError):
            delay_series("quantum", 2, (0.5,))


class TestFigures:
    def test_figure4_structure(self):
        fig = figure4(SMALL)
        assert fig.figure_id == "FIG4"
        # two algorithms x two sizes
        assert len(fig.delay_series) == 4
        assert len(fig.improvement_series) == 2

    def test_figure5_improvement_positive(self):
        fig = figure5(SMALL)
        for s in fig.improvement_series:
            assert all(v > 0 for v in s.values)

    def test_figure6_improvement_positive(self):
        fig = figure6(SMALL)
        for s in fig.improvement_series:
            assert all(v > 0 for v in s.values)

    def test_registry(self):
        assert set(FIGURES) == {"FIG4", "FIG5", "FIG6"}

    def test_default_hops_match_paper(self):
        fig = figure5(Sweep(loads=(0.5,), hops=(2, 4, 8)))
        labels = {s.label for s in fig.delay_series}
        assert "integrated (n=8)" in labels
