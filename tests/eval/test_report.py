"""Unit tests for the one-shot report generator."""

from repro.eval.report import generate_report, write_report


class TestReport:
    def test_quick_report_contains_all_sections(self):
        md = generate_report(quick=True)
        assert "# Reproduction report" in md
        assert "FIG4" in md and "FIG5" in md and "FIG6" in md
        assert "shape checks" in md
        assert "Tightness" in md
        assert "Admission capacity" in md

    def test_all_shape_checks_marked_passed(self):
        md = generate_report(quick=True)
        assert "- [x]" in md
        assert "- [ ]" not in md

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "R.md", quick=True)
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")
