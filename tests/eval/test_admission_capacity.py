"""Unit tests for the admission-capacity experiment (ADM1)."""

import pytest

from repro.eval.admission_capacity import (
    CapacityPoint,
    admission_capacity,
    capacity_table,
)


class TestAdmissionCapacity:
    def test_returns_point(self):
        p = admission_capacity("decomposed", 2, 15.0, rho=0.05,
                               max_tries=40)
        assert isinstance(p, CapacityPoint)
        assert p.admitted >= 1

    def test_looser_deadline_admits_more(self):
        tight = admission_capacity("decomposed", 2, 6.0, rho=0.05,
                                   max_tries=40).admitted
        loose = admission_capacity("decomposed", 2, 30.0, rho=0.05,
                                   max_tries=40).admitted
        assert loose >= tight

    def test_integrated_at_least_decomposed(self):
        dec = admission_capacity("decomposed", 3, 15.0, rho=0.04,
                                 max_tries=60).admitted
        integ = admission_capacity("integrated", 3, 15.0, rho=0.04,
                                   max_tries=60).admitted
        assert integ >= dec

    def test_rate_cap_limits_admissions(self):
        # at most capacity/rho connections fit regardless of deadline
        p = admission_capacity("decomposed", 2, 1e6, rho=0.2,
                               max_tries=40)
        assert p.admitted <= 5  # 1/0.2

    def test_table_renders(self):
        table = capacity_table(("decomposed",), 2, (10.0, 20.0),
                               rho=0.05, max_tries=30)
        assert "decomposed" in table
        assert "10.0" in table and "20.0" in table
