"""Unit tests for the fault-tolerant process-parallel sweep evaluator."""

import json
import math

import pytest

from repro.eval.parallel import SweepPoint, evaluate_grid


class TestEvaluateGrid:
    def test_serial_grid_order_and_values(self):
        pts = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                            parallel=False)
        assert [p.load for p in pts] == [0.3, 0.6]
        assert pts[0].delay < pts[1].delay

    def test_parallel_matches_serial(self):
        kwargs = dict(analyzers=["decomposed", "integrated"],
                      hops=[2, 3], loads=[0.4, 0.8])
        serial = evaluate_grid(parallel=False, **kwargs)
        par = evaluate_grid(parallel=True, max_workers=2, **kwargs)
        assert len(par) == len(serial) == 8
        for a, b in zip(serial, par):
            assert a.analyzer == b.analyzer
            assert a.delay == pytest.approx(b.delay, rel=1e-9)

    def test_single_task_stays_in_process(self):
        pts = evaluate_grid(["decomposed"], [2], [0.5])
        assert len(pts) == 1 and isinstance(pts[0], SweepPoint)

    def test_unknown_analyzer_raises(self):
        with pytest.raises(ValueError):
            evaluate_grid(["quantum"], [2], [0.5], parallel=False)

    def test_unknown_analyzer_raises_before_pool_start(self):
        with pytest.raises(ValueError):
            evaluate_grid(["quantum"], [2], [0.4, 0.5], parallel=True)

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1}, {"backoff": -0.1}, {"timeout": 0.0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            evaluate_grid(["decomposed"], [2], [0.5], **kwargs)


class TestFaultTolerance:
    """Crash isolation: a failing point is recorded, never fatal.

    Faults are injected into workers through the REPRO_SWEEP_FAULT
    environment variable (inherited across fork), targeting the task
    whose load matches the selector.
    """

    def test_crashing_worker_recorded_not_raised(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "crash@0.8")
        points = evaluate_grid(["decomposed"], [2], [0.4, 0.8],
                               max_workers=2, timeout=3.0,
                               retries=0, backoff=0.05)
        by_load = {p.load: p for p in points}
        assert by_load[0.4].ok
        assert not by_load[0.8].ok
        assert math.isnan(by_load[0.8].delay)
        assert "no result" in by_load[0.8].error

    def test_hanging_worker_times_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "hang@0.8")
        points = evaluate_grid(["decomposed"], [2], [0.4, 0.8, 0.6],
                               max_workers=2, timeout=2.0,
                               retries=0, backoff=0.05)
        by_load = {p.load: p for p in points}
        assert by_load[0.4].ok and by_load[0.6].ok  # siblings salvaged
        assert not by_load[0.8].ok

    def test_raising_worker_retried_then_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@0.8")
        points = evaluate_grid(["decomposed"], [2], [0.4, 0.8],
                               max_workers=2, timeout=10.0,
                               retries=2, backoff=0.01)
        by_load = {p.load: p for p in points}
        assert by_load[0.4].ok
        assert not by_load[0.8].ok
        assert "injected fault" in by_load[0.8].error
        assert by_load[0.8].attempts == 3  # 1 try + 2 retries

    def test_serial_mode_records_errors_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@")
        points = evaluate_grid(["decomposed"], [2], [0.5],
                               parallel=False, retries=1, backoff=0.01)
        assert len(points) == 1
        assert not points[0].ok and points[0].attempts == 2

    def test_sweep_point_ok_property(self):
        good = SweepPoint("decomposed", 2, 0.5, 1.0, 3.0)
        bad = SweepPoint("decomposed", 2, 0.5, 1.0, math.nan,
                         error="boom")
        assert good.ok and not bad.ok


class TestCheckpointResume:
    def test_checkpoint_streams_points(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        points = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                               parallel=False, checkpoint=ck)
        records = [json.loads(line)
                   for line in ck.read_text().splitlines()]
        assert len(records) == 2
        assert {r["load"] for r in records} == {0.3, 0.6}
        assert all(r["error"] is None for r in records)
        assert records[0]["delay"] == pytest.approx(points[0].delay)

    def test_resume_runs_only_missing_points(self, monkeypatch,
                                             tmp_path):
        ck = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@0.8")
        first = evaluate_grid(["decomposed"], [2], [0.3, 0.8, 0.6],
                              max_workers=2, timeout=10.0, retries=0,
                              backoff=0.01, checkpoint=ck)
        assert sum(not p.ok for p in first) == 1
        lines_before = len(ck.read_text().splitlines())
        assert lines_before == 3  # every point recorded, error included

        monkeypatch.delenv("REPRO_SWEEP_FAULT")
        second = evaluate_grid(["decomposed"], [2], [0.3, 0.8, 0.6],
                               max_workers=2, timeout=10.0,
                               checkpoint=ck, resume=True)
        assert all(p.ok for p in second)
        # the re-evaluated point replaced its error record in place:
        # one record per task, never an error-then-success duplicate
        records = [json.loads(line)
                   for line in ck.read_text().splitlines()]
        assert len(records) == lines_before
        assert all(r["error"] is None for r in records)
        assert [p.load for p in second] == [0.3, 0.8, 0.6]

    def test_resume_with_complete_checkpoint_runs_nothing(self,
                                                          tmp_path):
        ck = tmp_path / "sweep.jsonl"
        first = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                              parallel=False, checkpoint=ck)
        lines = len(ck.read_text().splitlines())
        second = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                               parallel=False, checkpoint=ck,
                               resume=True)
        assert len(ck.read_text().splitlines()) == lines  # no new work
        for a, b in zip(first, second):
            assert a.delay == pytest.approx(b.delay)

    def test_fresh_run_truncates_stale_checkpoint(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        ck.write_text("not json\n")
        evaluate_grid(["decomposed"], [2], [0.5, 0.7], parallel=False,
                      checkpoint=ck)
        records = [json.loads(line)
                   for line in ck.read_text().splitlines()]
        assert len(records) == 2

    def test_corrupt_lines_skipped_on_resume(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        ck.write_text('{"broken": \n')
        points = evaluate_grid(["decomposed"], [2], [0.5],
                               parallel=False, checkpoint=ck,
                               resume=True)
        assert points[0].ok


class TestAtomicCheckpoint:
    """The checkpoint file is replaced atomically on every write."""

    def _point(self, load=0.5):
        return SweepPoint("decomposed", 2, load, 1.0, 3.0)

    def test_writes_go_through_os_replace(self, monkeypatch, tmp_path):
        from repro.eval import parallel as mod

        replaced = []
        real = mod.os.replace
        monkeypatch.setattr(
            mod.os, "replace",
            lambda src, dst: (replaced.append((str(src), str(dst))),
                              real(src, dst))[1])
        ck = tmp_path / "sweep.jsonl"
        cp = mod._Checkpointer(ck, resume=False)
        cp.write(self._point(0.3))
        cp.write(self._point(0.6))
        cp.close()
        # one replace for the initial truncation, one per point
        assert len(replaced) == 3
        assert all(src == str(ck) + ".tmp" and dst == str(ck)
                   for src, dst in replaced)
        assert not (tmp_path / "sweep.jsonl.tmp").exists()
        assert len(ck.read_text().splitlines()) == 2

    def test_failed_write_preserves_previous_snapshot(
            self, monkeypatch, tmp_path):
        from repro.eval import parallel as mod

        ck = tmp_path / "sweep.jsonl"
        cp = mod._Checkpointer(ck, resume=False)
        cp.write(self._point(0.3))
        before = ck.read_text()

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(mod.os, "replace", boom)
        with pytest.raises(OSError):
            cp.write(self._point(0.6))
        # the visible checkpoint is still the complete previous snapshot
        assert ck.read_text() == before
        assert json.loads(before.splitlines()[0])["load"] == 0.3

    def test_resume_appends_to_existing_lines(self, tmp_path):
        from repro.eval import parallel as mod

        ck = tmp_path / "sweep.jsonl"
        cp = mod._Checkpointer(ck, resume=False)
        cp.write(self._point(0.3))
        cp.close()
        cp2 = mod._Checkpointer(ck, resume=True)
        cp2.write(self._point(0.6))
        cp2.close()
        loads = [json.loads(ln)["load"]
                 for ln in ck.read_text().splitlines()]
        assert loads == [0.3, 0.6]

    def test_crash_replay_dedupes_duplicate_records(self, tmp_path):
        """Regression: a killed run could leave the same task recorded
        twice (success, then a re-queued attempt after resume); every
        crash/resume cycle appended yet another duplicate.  Resuming
        now rewrites the file with one record per task,
        last-write-wins, corrupt lines dropped."""
        import math as _math

        from repro.eval import parallel as mod

        ck = tmp_path / "sweep.jsonl"
        stale = mod._point_to_record(
            SweepPoint("decomposed", 2, 0.5, 1.0, 1.0))
        fresh = mod._point_to_record(
            SweepPoint("decomposed", 2, 0.5, 1.0, 2.0))
        other = mod._point_to_record(
            SweepPoint("decomposed", 3, 0.5, 1.0, 9.0))
        ck.write_text(json.dumps(stale) + "\n"
                      + '{"broken": \n'           # crash mid-write
                      + json.dumps(fresh) + "\n"  # duplicate of stale
                      + json.dumps(other) + "\n")

        cp = mod._Checkpointer(ck, resume=True)
        records = [json.loads(ln)
                   for ln in ck.read_text().splitlines()]
        assert len(records) == 2  # deduped at load, before any write
        by_hops = {r["n_hops"]: r for r in records}
        assert by_hops[2]["delay"] == 2.0  # last write won
        assert by_hops[3]["delay"] == 9.0

        cp.write(SweepPoint("decomposed", 2, 0.5, 1.0, 3.0))
        cp.close()
        records = [json.loads(ln)
                   for ln in ck.read_text().splitlines()]
        assert len(records) == 2  # still one record per task
        assert {r["n_hops"]: r["delay"]
                for r in records}[2] == 3.0
        assert not _math.isnan(records[0]["delay"])

    def test_load_checkpoint_error_evicts_earlier_success(
            self, tmp_path):
        from repro.eval import parallel as mod

        ck = tmp_path / "sweep.jsonl"
        good = mod._point_to_record(
            SweepPoint("decomposed", 2, 0.5, 1.0, 1.0))
        bad = mod._point_to_record(
            SweepPoint("decomposed", 2, 0.5, 1.0, math.nan,
                       error="boom"))
        ck.write_text(json.dumps(good) + "\n" + json.dumps(bad) + "\n")
        # the later error supersedes the success: resume must re-run it
        # (kernel "" here matches the rows, so eviction is what empties
        # the result, not a kernel mismatch)
        assert mod._load_checkpoint(ck, "") == {}


class TestKernelRecording:
    """Satellite: every checkpoint row records its curve kernel, and
    resume re-runs rows recorded under a different kernel — a sweep
    must never mix grid-sampled and exact bounds."""

    def test_points_carry_current_kernel(self):
        from repro.curves.kernels import current_kernel

        pts = evaluate_grid(["decomposed"], [2], [0.5], parallel=False)
        assert pts[0].kernel == current_kernel()

    def test_checkpoint_rows_carry_kernel(self, tmp_path):
        from repro.curves.kernels import use_kernel

        ck = tmp_path / "sweep.jsonl"
        with use_kernel("grid"):
            evaluate_grid(["decomposed"], [2], [0.4], parallel=False,
                          checkpoint=ck)
        rec = json.loads(ck.read_text().splitlines()[0])
        assert rec["kernel"] == "grid"

    def test_resume_same_kernel_skips_completed(self, monkeypatch,
                                                tmp_path):
        ck = tmp_path / "sweep.jsonl"
        evaluate_grid(["decomposed"], [2], [0.3, 0.6], parallel=False,
                      checkpoint=ck)
        # any re-evaluated point would be poisoned into an error
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@")
        again = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                              parallel=False, retries=0, backoff=0.01,
                              checkpoint=ck, resume=True)
        assert all(p.ok for p in again)

    def test_resume_across_kernels_reruns_everything(self, tmp_path):
        from repro.curves.kernels import use_kernel

        ck = tmp_path / "sweep.jsonl"
        with use_kernel("grid"):
            first = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                                  parallel=False, checkpoint=ck)
        assert all(p.kernel == "grid" for p in first)
        with use_kernel("exact"):
            second = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                                   parallel=False, checkpoint=ck,
                                   resume=True)
        assert all(p.kernel == "exact" for p in second)
        rows = [json.loads(ln) for ln in ck.read_text().splitlines()]
        assert len(rows) == 2  # still one row per point
        assert all(r["kernel"] == "exact" for r in rows)

    def test_legacy_rows_without_kernel_rerun(self, tmp_path):
        from repro.eval import parallel as mod

        ck = tmp_path / "sweep.jsonl"
        evaluate_grid(["decomposed"], [2], [0.5], parallel=False,
                      checkpoint=ck)
        rec = json.loads(ck.read_text().splitlines()[0])
        del rec["kernel"]  # simulate a pre-kernel-recording checkpoint
        ck.write_text(json.dumps(rec) + "\n")
        assert mod._load_checkpoint(ck, "exact") == {}
        resumed = evaluate_grid(["decomposed"], [2], [0.5],
                                parallel=False, checkpoint=ck,
                                resume=True)
        assert resumed[0].ok and resumed[0].kernel != ""


class TestExactlyOneRowPerPoint:
    """Satellite: the timeout/retry/poison machinery must leave exactly
    one checkpoint row per grid point, and a failure *of recording
    itself* must abort the sweep, not masquerade as task failures."""

    def _rows_per_task(self, ck):
        counts = {}
        for ln in ck.read_text().splitlines():
            rec = json.loads(ln)
            key = (rec["analyzer"], rec["n_hops"], rec["load"])
            counts[key] = counts.get(key, 0) + 1
        return counts

    def test_hang_with_retries_single_row(self, monkeypatch, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "hang@0.8")
        points = evaluate_grid(["decomposed"], [2], [0.4, 0.8, 0.6],
                               max_workers=2, timeout=1.5, retries=1,
                               backoff=0.01, checkpoint=ck)
        assert len(points) == 3
        counts = self._rows_per_task(ck)
        assert set(counts.values()) == {1}
        assert len(counts) == 3

    def test_raise_with_retries_single_row(self, monkeypatch, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@0.8")
        evaluate_grid(["decomposed"], [2], [0.4, 0.8],
                      max_workers=2, timeout=10.0, retries=2,
                      backoff=0.01, checkpoint=ck)
        assert set(self._rows_per_task(ck).values()) == {1}

    def test_crash_single_row(self, monkeypatch, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "crash@0.8")
        evaluate_grid(["decomposed"], [2], [0.4, 0.8, 0.6],
                      max_workers=2, timeout=2.0, retries=1,
                      backoff=0.01, checkpoint=ck)
        counts = self._rows_per_task(ck)
        assert set(counts.values()) == {1}
        assert len(counts) == 3

    def test_expired_sweep_deadline_aborts_cleanly(self, tmp_path):
        import time as _time

        from repro.context import AnalysisContext, Deadline
        from repro.errors import AnalysisError

        ck = tmp_path / "sweep.jsonl"
        deadline = Deadline(0.005, "sweep budget")
        _time.sleep(0.02)  # expire before the first point lands
        ctx = AnalysisContext().with_deadline(deadline)
        # the expiry must ABORT the sweep — under the old behavior it
        # was caught by the task-isolation boundary and every point got
        # re-recorded as a bogus error row
        with pytest.raises(AnalysisError):
            evaluate_grid(["decomposed"], [2], [0.3, 0.6, 0.9],
                          parallel=False, retries=0, backoff=0.01,
                          checkpoint=ck, ctx=ctx)
        rows = [json.loads(ln) for ln in ck.read_text().splitlines()]
        assert len(rows) <= 1  # at most the first completed point
        assert all(r["error"] is None for r in rows)

    def test_grid_length_matches_results(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "hang@0.8")
        points = evaluate_grid(["decomposed"], [2, 3], [0.4, 0.8],
                               max_workers=2, timeout=1.5, retries=0,
                               backoff=0.01)
        assert len(points) == 4
        assert sum(not p.ok for p in points) == 2  # both hung loads
