"""Unit tests for the process-parallel sweep evaluator."""

import pytest

from repro.eval.parallel import SweepPoint, evaluate_grid


class TestEvaluateGrid:
    def test_serial_grid_order_and_values(self):
        pts = evaluate_grid(["decomposed"], [2], [0.3, 0.6],
                            parallel=False)
        assert [p.load for p in pts] == [0.3, 0.6]
        assert pts[0].delay < pts[1].delay

    def test_parallel_matches_serial(self):
        kwargs = dict(analyzers=["decomposed", "integrated"],
                      hops=[2, 3], loads=[0.4, 0.8])
        serial = evaluate_grid(parallel=False, **kwargs)
        par = evaluate_grid(parallel=True, max_workers=2, **kwargs)
        assert len(par) == len(serial) == 8
        for a, b in zip(serial, par):
            assert a.analyzer == b.analyzer
            assert a.delay == pytest.approx(b.delay, rel=1e-9)

    def test_single_task_stays_in_process(self):
        pts = evaluate_grid(["decomposed"], [2], [0.5])
        assert len(pts) == 1 and isinstance(pts[0], SweepPoint)

    def test_unknown_analyzer_raises(self):
        with pytest.raises(ValueError):
            evaluate_grid(["quantum"], [2], [0.5], parallel=False)
