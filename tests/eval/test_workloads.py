"""Unit tests for sweep configurations."""

import pytest

from repro.eval.workloads import Sweep, default_sweep, quick_sweep


class TestSweep:
    def test_default_matches_paper_grid(self):
        s = default_sweep()
        assert s.loads[0] == pytest.approx(0.1)
        assert s.loads[-1] == pytest.approx(0.9)
        assert len(s.loads) == 9
        assert s.hops == (2, 4, 6, 8)

    def test_quick_is_small(self):
        s = quick_sweep()
        assert len(s.loads) <= 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sweep(loads=(), hops=(2,))
        with pytest.raises(ValueError):
            Sweep(loads=(0.5,), hops=())

    def test_rejects_overload(self):
        with pytest.raises(ValueError):
            Sweep(loads=(1.0,), hops=(2,))

    def test_rejects_bad_hops(self):
        with pytest.raises(ValueError):
            Sweep(loads=(0.5,), hops=(0,))

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            Sweep(loads=(0.5,), hops=(2,), sigma=0.0)
