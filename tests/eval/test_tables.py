"""Unit tests for the text table renderer."""

import math

import pytest

from repro.eval.figures import FigureData, Series
from repro.eval.tables import (
    iter_figure_rows,
    render_figure,
    render_series_table,
)


def fig():
    s1 = Series("a (n=2)", (0.1, 0.5), (1.0, 2.0))
    s2 = Series("b (n=2)", (0.1, 0.5), (1.5, math.inf))
    r = Series("R[a,b] (n=2)", (0.1, 0.5), (0.33, math.nan))
    return FigureData("FIGX", "test figure", (s1, s2), (r,))


class TestRenderSeriesTable:
    def test_aligned_columns(self):
        out = render_series_table([Series("col", (0.1,), (3.0,))])
        lines = out.splitlines()
        assert "U" in lines[0] and "col" in lines[0]
        assert "0.10" in lines[2] and "3.0000" in lines[2]

    def test_inf_and_nan_rendering(self):
        out = render_series_table(fig().delay_series +
                                  fig().improvement_series)
        assert "inf" in out and "nan" in out

    def test_mismatched_axes_rejected(self):
        a = Series("a", (0.1,), (1.0,))
        b = Series("b", (0.2,), (1.0,))
        with pytest.raises(ValueError):
            render_series_table([a, b])

    def test_empty(self):
        assert "no series" in render_series_table([])


class TestRenderFigure:
    def test_contains_both_panels(self):
        out = render_figure(fig())
        assert "FIGX" in out
        assert "delay bound" in out
        assert "relative improvement" in out

    def test_iter_rows(self):
        rows = list(iter_figure_rows(fig()))
        assert ("a (n=2)", 0.1, 1.0) in rows
        assert len(rows) == 6
