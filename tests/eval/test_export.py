"""Unit tests for CSV/JSON export of figure data."""

import csv
import json
import math

from repro.eval.export import (
    figure_to_csv,
    figure_to_json,
    write_figure_files,
)
from repro.eval.figures import FigureData, Series


def fig():
    s = Series("dec (n=2)", (0.1, 0.5), (1.0, 2.0))
    r = Series("R (n=2)", (0.1, 0.5), (0.5, math.inf))
    return FigureData("FIGT", "export test", (s,), (r,))


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = figure_to_csv(fig(), tmp_path / "f.csv")
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["panel", "series", "load", "value"]
        assert ["delay", "dec (n=2)", "0.1", "1.0"] in rows
        assert ["improvement", "R (n=2)", "0.5", "inf"] in rows
        assert len(rows) == 5


class TestJson:
    def test_structure(self, tmp_path):
        path = figure_to_json(fig(), tmp_path / "f.json")
        doc = json.loads(path.read_text())
        assert doc["figure_id"] == "FIGT"
        assert doc["delay"][0]["values"] == [1.0, 2.0]
        assert doc["improvement"][0]["values"][1] == "inf"


class TestBundle:
    def test_write_all(self, tmp_path):
        written = write_figure_files([fig()], tmp_path / "out")
        assert len(written) == 2
        assert all(p.exists() for p in written)
